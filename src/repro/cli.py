"""Command-line interface: regenerate any paper artifact from a shell.

::

    repro fig2 --app wrf
    repro fig2 --app cg --w2 16 8 4 1
    repro fig3
    repro fig4 --w2 10 --seeds 10
    repro fig5 --app cg --seeds 40
    repro table1 --topology "XGFT(2;16,16;1,10)"
    repro equivalence --permutations 500
    repro info --topology "XGFT(3;4,4,4;1,4,2)"
    repro eval --topology "xgft:2;16,16;1,8" --pattern bit-reversal \\
               --algorithms d-mod-k "r-nca-d" --faults "links:rate=0.05"
    repro sweep --jobs 4 -o sweep_results.json
    repro sweep --spec benchmarks/smoke_spec.json --baseline benchmarks/baseline_smoke.json
    repro sweep --faults none "links:rate=0.05" --patterns shift-1
    repro sweep --store ./store          # persist tables as serve artifacts
    repro serve --topology "XGFT(2;16,16;1,8)" --algorithm d-mod-k --store ./store
    repro serve --batch queries.jsonl --store ./store
    repro serve --listen 127.0.0.1:9000 --store ./store
    repro serve --bench -o BENCH_serve.json --baseline benchmarks/baseline_serve.json
    repro compare baseline.json current.json --tolerance 0.1
    repro faults --topology "XGFT(3;4,4,4;1,4,2)" --rates 0 0.01 0.05
    repro scale --preset smoke --check
    repro scale --preset full -o BENCH_fluid.json
    repro dynamic --workload "poisson(load=0.8)"
    repro dynamic --loads 0.2 0.5 0.8 --algorithms d-mod-k s-mod-k random
    repro profile --workload "poisson(load=0.5)" -o profile
    repro profile --overhead-check
    repro graphs --preset smoke --baseline benchmarks/baseline_graph.json
    repro graphs --preset full -o BENCH_graph.json
    repro store gc --max-bytes 256M --dry-run
    repro dynamic --workload "poisson(load=0.5)" --trace   # any of the four
                                                           # hot commands

``dynamic`` drives open-loop arrival streams (Poisson, bursty ON/OFF,
trace replay — :mod:`repro.workloads`) through a fluid engine and
prints load-vs-FCT curves per routing algorithm; dynamic cells also
sweep alongside phase cells via ``repro sweep --workloads``.

``eval`` evaluates single :class:`repro.api.Scenario` s and prints a
cross-algorithm comparison table; every axis is a registry spec string
(:mod:`repro.registry`).  The ``sweep`` subcommand runs a declarative
{topology x pattern x algorithm x seed x faults} grid through
:mod:`repro.experiments.sweep` — by default the paper's full Fig. 2-5
evaluation grid — and writes the schema-versioned JSON artifact CI
regression-gates on.  ``faults`` sweeps failure rates over a degraded
topology with local route repair (:mod:`repro.faults`) and reports
slowdown and flow-loss curves.

``serve`` is the production query side (:mod:`repro.serve`): it opens a
compact all-pairs table from the persistent artifact store
(:mod:`repro.store`, building on a miss), then answers JSON-lines route
queries in batch mode (``--batch``), over an asyncio TCP endpoint
(``--listen``), or measures bytes/route and lookups/sec (``--bench``,
the ``BENCH_serve.json`` document CI gates on).  ``sweep --store``
persists every table a sweep builds into the same store.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from . import experiments
from .api import Scenario, compare
from .metrics import available_metrics
from .obs.logs import configure_logging
from .obs.trace import TRACER, trace_prefix_from_env, write_trace_files
from .sim.engines import DEFAULT_ENGINE, available_engines, fluid_engine_names
from .topology import ascii_art, cost_summary, parse_xgft, slimmed_two_level

__all__ = ["main", "build_parser", "package_version"]


def package_version() -> str:
    """The installed distribution version, or the in-tree fallback."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro-xgft")
    except PackageNotFoundError:
        from . import __version__

        return __version__

#: the paper's full evaluation grid (Figs. 2 and 5): both applications,
#: every algorithm, the whole progressive-slimming topology family
PAPER_GRID = {
    "topologies": [slimmed_two_level(16, 16, w2).spec() for w2 in range(16, 0, -1)],
    "patterns": ["wrf-256", "cg-128"],
    "algorithms": ["s-mod-k", "d-mod-k", "colored", "random", "r-nca-u", "r-nca-d"],
    "seeds": 5,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the figures/tables of 'Oblivious Routing "
        "Schemes in Extended Generalized Fat Tree Networks' (CLUSTER 2009).",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {package_version()}"
    )
    parser.add_argument(
        "--log-level",
        default=None,
        choices=("debug", "info", "warning", "error", "critical"),
        help="stdlib logging level for the repro.* loggers "
        "(default: $REPRO_LOG or warning)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_trace_arg(p: argparse.ArgumentParser, default_prefix: str) -> None:
        p.add_argument(
            "--trace",
            nargs="?",
            const=default_prefix,
            default=None,
            metavar="PREFIX",
            help="record a span trace and write PREFIX.trace.jsonl + "
            f"PREFIX.perfetto.json on exit (default prefix: {default_prefix}; "
            "$REPRO_TRACE=<prefix> does the same for any command)",
        )

    def add_sweep_args(p: argparse.ArgumentParser, default_seeds: int) -> None:
        p.add_argument("--app", choices=("wrf", "cg"), required=True)
        p.add_argument(
            "--w2", type=int, nargs="+", default=None, help="w2 values to sweep (default 16..1)"
        )
        p.add_argument(
            "--seeds", type=int, default=default_seeds, help="seeds per randomized algorithm"
        )
        p.add_argument("--engine", choices=available_engines(), default=DEFAULT_ENGINE)

    add_sweep_args(sub.add_parser("fig2", help="Fig. 2: classic oblivious schemes"), 5)
    add_sweep_args(sub.add_parser("fig5", help="Fig. 5: + r-NCA-u / r-NCA-d"), 40)

    sub.add_parser("fig3", help="Fig. 3: the CG.D traffic pattern + Eq. (2)")

    p4 = sub.add_parser("fig4", help="Fig. 4: routes per NCA")
    p4.add_argument("--w2", type=int, default=16, help="16 for Fig. 4(a), 10 for 4(b)")
    p4.add_argument("--seeds", type=int, default=10)

    pt = sub.add_parser("table1", help="Table I for a topology")
    pt.add_argument("--topology", default="XGFT(2;16,16;1,16)")

    pe = sub.add_parser("equivalence", help="Sec. VII-B spectra")
    pe.add_argument("--permutations", type=int, default=200)
    pe.add_argument("--seed", type=int, default=0)

    pi = sub.add_parser("info", help="structural summary of a topology")
    pi.add_argument("--topology", default="XGFT(2;16,16;1,16)")

    pv = sub.add_parser(
        "eval",
        help="evaluate scenarios through the repro.api facade and "
        "print a cross-algorithm comparison table",
    )
    pv.add_argument(
        "--topology",
        default="XGFT(2;16,16;1,8)",
        help="topology spec: raw XGFT, xgft:..., or a registered family "
        "('slimmed-two-level(w2=10)')",
    )
    pv.add_argument(
        "--pattern", default="bit-reversal", help="pattern spec ('shift(d=3)', 'wrf-256', ...)"
    )
    pv.add_argument(
        "--algorithms",
        nargs="+",
        default=["s-mod-k", "d-mod-k", "random", "r-nca-u", "r-nca-d"],
        help="algorithm specs to compare ('d-mod-k', 'r-nca-u(r=2)', ...)",
    )
    pv.add_argument("--faults", default="none", help="fault spec ('links:rate=0.05', ...)")
    pv.add_argument("--seed", type=int, default=0)
    pv.add_argument(
        "--metrics", nargs="+", default=None, help="registered metric names"
    )
    pv.add_argument("--engine", choices=available_engines(), default=DEFAULT_ENGINE)

    ps = sub.add_parser(
        "sweep",
        help="run a {topology x pattern x algorithm x seed} grid "
        "(default: the paper's Fig. 2-5 grid)",
    )
    ps.add_argument(
        "--spec",
        type=Path,
        default=None,
        help="JSON sweep spec file; mutually exclusive with the "
        "grid flags (--seeds/--engine may still override it)",
    )
    ps.add_argument(
        "--topologies", nargs="+", default=None, metavar="XGFT", help="XGFT spec strings"
    )
    ps.add_argument(
        "--patterns",
        nargs="+",
        default=None,
        help="pattern names (wrf-256, cg-128, shift-1, all-pairs, ...)",
    )
    ps.add_argument(
        "--algorithms",
        nargs="+",
        default=None,
        help="algorithm names, optionally parameterized: 'r-nca-d(map_kind=mod)'",
    )
    ps.add_argument("--seeds", type=int, default=None, help="seeds per randomized algorithm")
    ps.add_argument("--metrics", nargs="+", default=None, choices=list(available_metrics()))
    ps.add_argument(
        "--faults",
        nargs="+",
        default=None,
        metavar="SPEC",
        help="fault scenarios per run ('none', 'links:rate=0.05', "
        "'switches:count=1', 'worst-links:count=4')",
    )
    ps.add_argument(
        "--workloads",
        nargs="+",
        default=None,
        metavar="SPEC",
        help="dynamic open-loop workloads per run ('none', "
        "'poisson(load=0.8)', 'onoff(load=0.6,duty=0.25)', "
        "'trace(path=arrivals.csv)')",
    )
    ps.add_argument("--engine", choices=available_engines(), default=None)
    ps.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="worker processes (grouped by shared route table)",
    )
    ps.add_argument(
        "--filter",
        dest="run_filter",
        default=None,
        help="fnmatch/substring filter on run ids ('topology/pattern/algorithm@seed')",
    )
    ps.add_argument("--output", "-o", type=Path, default=Path("sweep_results.json"))
    ps.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="prior artifact to regression-compare against (nonzero exit on regression)",
    )
    ps.add_argument(
        "--tolerance",
        type=float,
        default=0.05,
        help="relative regression tolerance for --baseline",
    )
    ps.add_argument(
        "--max-rows", type=int, default=40, help="run rows to print (artifact always holds all)"
    )
    ps.add_argument(
        "--store",
        type=Path,
        default=None,
        help="artifact-store root: load prebuilt route tables from it and "
        "persist fresh ones as reusable `repro serve` entries",
    )
    add_trace_arg(ps, "repro_sweep")

    pc = sub.add_parser(
        "compare", help="diff two sweep artifacts; nonzero exit on regression"
    )
    pc.add_argument("baseline", type=Path)
    pc.add_argument("current", type=Path)
    pc.add_argument("--tolerance", type=float, default=0.05)
    pc.add_argument(
        "--metrics", nargs="+", default=None, help="restrict the diff to these metrics"
    )

    pff = sub.add_parser(
        "faults",
        help="resilience sweep: slowdown and flow loss vs failure rate "
        "on a degraded topology with local route repair",
    )
    pff.add_argument("--topology", default="XGFT(3;4,4,4;1,4,2)", help="XGFT spec string")
    pff.add_argument(
        "--pattern", default="shift-1", help="traffic pattern (wrf-256, cg-128, shift-1, ...)"
    )
    pff.add_argument("--algorithms", nargs="+", default=["d-mod-k", "s-mod-k", "r-nca-d", "random"])
    pff.add_argument(
        "--rates",
        type=float,
        nargs="+",
        default=[0.0, 0.01, 0.05],
        help="failure rates (0 = pristine)",
    )
    pff.add_argument(
        "--kind",
        choices=("links", "switches"),
        default="links",
        help="what fails: cables or inner switches",
    )
    pff.add_argument(
        "--seeds",
        type=int,
        default=3,
        help="routing/repair seeds per algorithm (the fault draw is fixed per rate)",
    )
    pff.add_argument("--engine", choices=available_engines(), default=DEFAULT_ENGINE)
    pff.add_argument("--jobs", "-j", type=int, default=1)
    pff.add_argument(
        "--output", "-o", type=Path, default=None, help="also write the sweep artifact JSON"
    )

    pd = sub.add_parser(
        "dynamic",
        help="open-loop dynamic traffic: drive Poisson/bursty/trace "
        "arrival streams through a fluid engine and print load-vs-FCT "
        "curves per routing algorithm",
    )
    pd.add_argument(
        "--topology", default="XGFT(3;8,8,8;1,4,4)", help="XGFT spec string"
    )
    pd.add_argument(
        "--workload",
        nargs="+",
        default=None,
        metavar="SPEC",
        help="explicit workload specs ('poisson(load=0.8)', "
        "'onoff(load=0.6,duty=0.25)', 'trace(path=arrivals.csv)'); "
        "default: a poisson ladder over --loads",
    )
    pd.add_argument(
        "--loads",
        type=float,
        nargs="+",
        default=None,
        help="offered-load ladder for the default poisson workloads "
        "(default 0.2 0.5 0.8; mutually exclusive with --workload)",
    )
    pd.add_argument(
        "--flows",
        type=int,
        default=None,
        help="arrival-stream length of the --loads ladder (default 20000; "
        "for --workload, set flows= in the spec)",
    )
    pd.add_argument(
        "--sizes",
        default=None,
        help="size distribution of the --loads ladder (fixed, uniform, "
        "pareto; for --workload, set sizes= in the spec)",
    )
    pd.add_argument("--algorithms", nargs="+", default=["d-mod-k"])
    pd.add_argument(
        "--seeds", type=int, default=1, help="arrival-stream seeds per workload"
    )
    pd.add_argument(
        "--faults", nargs="+", default=["none"], metavar="SPEC",
        help="fault scenarios the arrivals run into ('links:rate=0.05', ...)",
    )
    pd.add_argument(
        "--engine",
        choices=fluid_engine_names(),
        default=DEFAULT_ENGINE,
        help="fluid-kind backend (open-loop arrivals need the incremental "
        "fluid surface; the replay engine cannot drive them)",
    )
    pd.add_argument("--jobs", "-j", type=int, default=1)
    pd.add_argument(
        "--output", "-o", type=Path, default=None, help="also write the sweep artifact JSON"
    )
    pd.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="prior artifact to regression-compare against (nonzero exit on regression)",
    )
    pd.add_argument(
        "--tolerance",
        type=float,
        default=0.05,
        help="relative regression tolerance for --baseline",
    )
    add_trace_arg(pd, "repro_dynamic")

    psc = sub.add_parser(
        "scale",
        help="fluid-engine scaling benchmark: scalar vs vectorized wall "
        "time over a (topology x flow-count) grid, with an equivalence check",
    )
    psc.add_argument(
        "--preset",
        choices=tuple(experiments.PRESETS),
        default="smoke",
        help="grid preset: 'smoke' (CI, seconds) or 'full' (the committed "
        "BENCH_fluid.json trajectory)",
    )
    psc.add_argument(
        "--topologies", nargs="+", default=None, metavar="XGFT", help="override the preset grid"
    )
    psc.add_argument(
        "--flows", type=int, nargs="+", default=None, help="concurrent flow counts to sweep"
    )
    psc.add_argument(
        "--sizes",
        nargs="+",
        default=None,
        choices=("uniform", "mixed"),
        help="message-size modes: uniform (phase-like batch completions) "
        "and/or mixed (every completion distinct)",
    )
    psc.add_argument(
        "--engines",
        nargs="+",
        default=None,
        choices=fluid_engine_names(),
        help="fluid backends to time (default: all registered)",
    )
    psc.add_argument(
        "--scalar-cap",
        type=int,
        default=None,
        help="largest flow count the scalar engine is asked to run",
    )
    psc.add_argument("--repeats", type=int, default=None, help="best-of-N wall timing")
    psc.add_argument("--seed", type=int, default=0)
    psc.add_argument(
        "--check",
        action="store_true",
        help="nonzero exit if paired engines disagree (phase sim times, "
        "dynamic FCT statistics)",
    )
    psc.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FLOORS.json",
        help="nonzero exit if the run violates a committed floors "
        "document (telemetry presence/magnitude gate)",
    )
    psc.add_argument(
        "--output", "-o", type=Path, default=None, help="write the BENCH_fluid JSON document"
    )
    add_trace_arg(psc, "repro_scale")

    pv2 = sub.add_parser(
        "serve",
        help="query stored route tables: JSON-lines batch mode, an asyncio "
        "TCP endpoint, or the serving benchmark",
    )
    pv2.add_argument("--topology", default="XGFT(2;16,16;1,8)", help="XGFT spec string")
    pv2.add_argument("--algorithm", default="d-mod-k", help="registry algorithm spec")
    pv2.add_argument(
        "--algorithms",
        nargs="+",
        default=None,
        help="(--bench) algorithms to measure (default: d-mod-k random)",
    )
    pv2.add_argument("--seed", type=int, default=0)
    pv2.add_argument(
        "--faults",
        default="none",
        help="serve the repaired table for this fault spec ('links:count=4,seed=1', ...)",
    )
    pv2.add_argument(
        "--store",
        type=Path,
        default=None,
        help="artifact-store root (default: $REPRO_STORE or ~/.cache/repro-xgft/store)",
    )
    pv2.add_argument(
        "--no-build",
        action="store_true",
        help="fail on a store miss instead of building the entry",
    )
    mode = pv2.add_mutually_exclusive_group()
    mode.add_argument(
        "--batch",
        default=None,
        metavar="FILE",
        help="answer JSON-lines requests from FILE ('-' = stdin) on stdout",
    )
    mode.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help="run the asyncio JSON-lines TCP endpoint (port 0 = ephemeral)",
    )
    mode.add_argument(
        "--bench",
        action="store_true",
        help="measure bytes/route and lookups/sec (the BENCH_serve document)",
    )
    pv2.add_argument(
        "--batch-size", type=int, default=65536, help="(--bench) lookups per batch"
    )
    pv2.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="(--bench) committed floors to gate on (nonzero exit on regression)",
    )
    pv2.add_argument(
        "--output", "-o", type=Path, default=None, help="(--bench) write the BENCH_serve JSON"
    )
    add_trace_arg(pv2, "repro_serve")

    pp = sub.add_parser(
        "profile",
        help="run a dynamic workload, sweep spec, or scale preset under "
        "tracing; write the trace pair and print a top-spans table",
    )
    pp.add_argument(
        "--workload",
        nargs="+",
        default=None,
        metavar="SPEC",
        help="dynamic workload specs to drive ('poisson(load=0.5)', ...); "
        "the default mode when --spec/--scale-preset are absent",
    )
    pp.add_argument(
        "--topology", default="XGFT(2;8,8;1,4)", help="XGFT spec for --workload mode"
    )
    pp.add_argument("--algorithms", nargs="+", default=["d-mod-k"])
    pp.add_argument("--seeds", type=int, default=1, help="arrival-stream seeds per workload")
    pp.add_argument("--engine", choices=fluid_engine_names(), default=DEFAULT_ENGINE)
    pp.add_argument(
        "--spec",
        type=Path,
        default=None,
        help="profile this JSON sweep spec instead of a dynamic workload",
    )
    pp.add_argument(
        "--scale-preset",
        choices=tuple(experiments.PRESETS),
        default=None,
        help="profile the fluid scaling benchmark preset instead",
    )
    pp.add_argument(
        "--limit", type=int, default=15, help="top-span rows to print"
    )
    pp.add_argument(
        "--output",
        "-o",
        default="profile",
        metavar="PREFIX",
        help="trace file prefix (writes PREFIX.trace.jsonl + PREFIX.perfetto.json)",
    )
    pp.add_argument(
        "--overhead-check",
        action="store_true",
        help="instead of tracing: A/B the disabled-instrumentation cost "
        "on the scale smoke preset and fail above --tolerance",
    )
    pp.add_argument(
        "--repeats", type=int, default=3, help="(--overhead-check) best-of-N timing"
    )
    pp.add_argument(
        "--tolerance",
        type=float,
        default=0.02,
        help="(--overhead-check) maximum tolerated relative overhead",
    )

    pg = sub.add_parser(
        "graphs",
        help="general-graph routing benchmark: random-walk and racke-tree "
        "over {fat tree, failed leaf-spine, random-regular}, plus the "
        "d-mod-k bridge on the shared fat tree (BENCH_graph.json)",
    )
    pg.add_argument(
        "--preset",
        choices=("smoke", "full"),
        default="smoke",
        help="grid preset: 'smoke' (CI, 64 hosts) or 'full' (the "
        "committed BENCH_graph.json trajectory, 256 hosts)",
    )
    pg.add_argument("--engine", choices=fluid_engine_names(), default=DEFAULT_ENGINE)
    pg.add_argument("--jobs", "-j", type=int, default=1)
    pg.add_argument(
        "--max-rows", type=int, default=60, help="result table rows to print"
    )
    pg.add_argument(
        "--output", "-o", type=Path, default=None, help="write the sweep artifact JSON"
    )
    pg.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="prior artifact to regression-compare against (nonzero exit on regression)",
    )
    pg.add_argument(
        "--tolerance",
        type=float,
        default=0.05,
        help="relative regression tolerance for --baseline",
    )
    add_trace_arg(pg, "repro_graphs")

    pl = sub.add_parser(
        "lint",
        help="domain-aware static analysis: determinism, registry, "
        "instrumentation, concurrency, and numpy invariants",
    )
    pl.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests); "
        "directories are walked for *.py and *.md, skipping fixtures",
    )
    pl.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule selection: ids (REP001), id prefixes "
        "(REP00) or families (determinism); default: all",
    )
    pl.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json is the schema-versioned artifact CI uploads)",
    )
    pl.add_argument(
        "--statistics",
        action="store_true",
        help="append per-rule counts and scan totals (text format)",
    )
    pl.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )

    pst = sub.add_parser("store", help="artifact-store maintenance")
    store_sub = pst.add_subparsers(dest="store_command", required=True)
    pgc = store_sub.add_parser(
        "gc",
        help="evict least-recently-used entries until the store fits a byte budget",
    )
    pgc.add_argument(
        "--max-bytes",
        required=True,
        metavar="SIZE",
        help="size budget; plain bytes or a K/M/G-suffixed value ('256M')",
    )
    pgc.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be evicted without deleting anything",
    )
    pgc.add_argument(
        "--store",
        type=Path,
        default=None,
        help="store root (default: $REPRO_STORE or ~/.cache/repro-xgft/store)",
    )
    return parser


def _sweep_spec_from_args(args: argparse.Namespace) -> experiments.SweepSpec:
    if args.spec is not None:
        conflicting = [
            flag
            for flag, value in (
                ("--topologies", args.topologies),
                ("--patterns", args.patterns),
                ("--algorithms", args.algorithms),
                ("--metrics", args.metrics),
                ("--faults", args.faults),
                ("--workloads", args.workloads),
            )
            if value is not None
        ]
        if conflicting:
            raise SystemExit(
                f"error: {', '.join(conflicting)} cannot be combined with --spec; "
                "edit the spec file (only --seeds/--engine override it)"
            )
        spec = experiments.SweepSpec.from_dict(json.loads(args.spec.read_text()))
        overrides = {}
        if args.seeds is not None:
            overrides["seeds"] = args.seeds
        if args.engine is not None:
            overrides["engine"] = args.engine
        if overrides:
            d = spec.to_dict()
            d.update(overrides)
            spec = experiments.SweepSpec.from_dict(d)
        return spec
    grid = dict(PAPER_GRID)
    if args.topologies is not None:
        grid["topologies"] = args.topologies
    if args.patterns is not None:
        grid["patterns"] = args.patterns
    if args.algorithms is not None:
        grid["algorithms"] = args.algorithms
    if args.seeds is not None:
        grid["seeds"] = args.seeds
    if args.metrics is not None:
        grid["metrics"] = args.metrics
    if args.faults is not None:
        grid["faults"] = args.faults
    if args.workloads is not None:
        grid["workloads"] = args.workloads
    if args.engine is not None:
        grid["engine"] = args.engine
    return experiments.SweepSpec.from_dict(grid)


def _cmd_sweep(args: argparse.Namespace) -> int:
    spec = _sweep_spec_from_args(args)
    result = experiments.run_sweep(
        spec, jobs=args.jobs, run_filter=args.run_filter, store=args.store
    )
    path = experiments.write_artifact(result, args.output)
    print(experiments.format_sweep_results(result, max_rows=args.max_rows))
    cache = result.cache_stats
    store_note = ""
    if args.store is not None:
        store_note = (
            f", store: {cache.get('store_hits', 0)} loaded, "
            f"{cache.get('store_puts', 0)} persisted"
        )
    print(
        f"\n{len(result.runs)} runs in {result.total_wall_time_s:.1f}s "
        f"(jobs={args.jobs}; route tables: {cache.get('table_builds', 0)} built, "
        f"{cache.get('table_hits', 0)} reused{store_note})"
    )
    print(f"artifact written to {path}")
    if args.baseline is not None:
        baseline = experiments.load_artifact(args.baseline)
        comparison = experiments.sweep_compare(
            baseline, result.to_dict(), rel_tol=args.tolerance
        )
        print(experiments.format_sweep_compare(comparison))
        return 0 if comparison.ok else 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import (
        RouteServer,
        check_baseline,
        decode_error_response,
        handle_request,
        run_benchmark,
        write_benchmark,
    )

    if args.bench:
        algorithms = tuple(args.algorithms or ("d-mod-k", "random"))
        results = run_benchmark(
            topologies=(args.topology,),
            algorithms=algorithms,
            seed=args.seed,
            store=args.store,
            batch_size=args.batch_size,
        )
        for e in results["entries"]:
            print(
                f"{e['algorithm']:>10s} on {e['topology']}: {e['encoding']:11s} "
                f"{e['compact_bytes_per_route']:.4f} B/route ({e['compression']}x vs "
                f"{e['full_bytes_per_route']:.0f}), batch {e['batch_lookups_per_sec']:,}/s, "
                f"async {e['async_lookups_per_sec']:,}/s, verified={e['verified']}"
            )
        if args.output is not None:
            print(f"benchmark written to {write_benchmark(results, args.output)}")
        if args.baseline is not None:
            failures = check_baseline(results, json.loads(args.baseline.read_text()))
            if failures:
                for failure in failures:
                    print(f"FAIL: {failure}", file=sys.stderr)
                return 1
            print("baseline gate: PASS")
        return 0

    try:
        server = RouteServer.from_store(
            args.topology,
            args.algorithm,
            seed=args.seed,
            faults=args.faults,
            store=args.store,
            build=not args.no_build,
        )
    except KeyError as exc:
        raise SystemExit(
            f"error: {exc.args[0]} (drop --no-build to build it now)"
        ) from exc
    if args.batch is not None:
        lines = sys.stdin if args.batch == "-" else Path(args.batch).open()
        errors = 0
        with lines:
            for line in lines:
                line = line.strip()
                if not line:
                    continue
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as exc:
                    response = decode_error_response(server, exc)
                else:
                    response = handle_request(server, request)
                if not response.get("ok"):
                    errors += 1
                print(json.dumps(response))
        return 1 if errors else 0
    if args.listen is not None:
        import asyncio

        from .serve import serve_forever

        host, _, port_text = args.listen.rpartition(":")

        async def _run() -> None:
            loop = asyncio.get_running_loop()
            ready: asyncio.Future = loop.create_future()
            task = asyncio.ensure_future(
                serve_forever(
                    server, host or "127.0.0.1", int(port_text or 0), ready=ready
                )
            )
            bound_host, bound_port = await ready
            info = server.info()
            print(
                f"serving {args.algorithm} on {info['topology']} "
                f"at {bound_host}:{bound_port}",
                flush=True,
            )
            await task

        try:
            asyncio.run(_run())
        except KeyboardInterrupt:  # pragma: no cover - interactive stop
            pass
        return 0
    print(json.dumps(server.info(), indent=1, sort_keys=True))
    return 0


def _cmd_eval(args: argparse.Namespace) -> int:
    scenarios = [
        Scenario(args.topology, args.pattern, algorithm, faults=args.faults, seed=args.seed)
        for algorithm in args.algorithms
    ]
    comparison = compare(scenarios, metrics=args.metrics, engine=args.engine)
    print(comparison.format())
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    spec = experiments.fault_grid_spec(
        topology=args.topology,
        pattern=args.pattern,
        algorithms=args.algorithms,
        rates=args.rates,
        kind=args.kind,
        seeds=args.seeds,
        engine=args.engine,
    )
    result = experiments.run_sweep(spec, jobs=args.jobs)
    print(experiments.format_fault_sweep(result))
    if args.output is not None:
        path = experiments.write_artifact(result, args.output)
        print(f"\nartifact written to {path}")
    return 0


def _cmd_dynamic(args: argparse.Namespace) -> int:
    if args.workload:
        conflicting = [
            flag
            for flag, value in (
                ("--loads", args.loads),
                ("--flows", args.flows),
                ("--sizes", args.sizes),
            )
            if value is not None
        ]
        if conflicting:
            raise SystemExit(
                f"error: {', '.join(conflicting)} cannot be combined with "
                "--workload; set load=/flows=/sizes= inside the workload spec"
            )
        workloads = list(args.workload)
    else:
        flows = args.flows if args.flows is not None else 20000
        sizes = args.sizes if args.sizes is not None else "fixed"
        loads = args.loads if args.loads is not None else [0.2, 0.5, 0.8]
        workloads = [
            f"poisson(load={load:g},sizes={sizes},flows={flows})" for load in loads
        ]
    spec = experiments.dynamic_grid_spec(
        topology=args.topology,
        workloads=workloads,
        algorithms=args.algorithms,
        seeds=args.seeds,
        engine=args.engine,
        faults=args.faults,
    )
    result = experiments.run_sweep(spec, jobs=args.jobs)
    print(experiments.format_dynamic_sweep(result))
    completed = sum(
        r.get("dynamic", {}).get("flows", {}).get("completed", 0) for r in result.runs
    )
    print(
        f"\n{len(result.runs)} dynamic runs, {completed} flows completed "
        f"in {result.total_wall_time_s:.1f}s (engine={spec.engine})"
    )
    if args.output is not None:
        path = experiments.write_artifact(result, args.output)
        print(f"artifact written to {path}")
    if args.baseline is not None:
        baseline = experiments.load_artifact(args.baseline)
        comparison = experiments.sweep_compare(
            baseline, result.to_dict(), rel_tol=args.tolerance
        )
        print(experiments.format_sweep_compare(comparison))
        return 0 if comparison.ok else 1
    return 0


def _cmd_scale(args: argparse.Namespace) -> int:
    data = experiments.run_scale(
        topologies=args.topologies,
        flow_counts=args.flows,
        size_modes=args.sizes,
        engines=args.engines,
        preset=args.preset,
        scalar_cap=args.scalar_cap,
        repeats=args.repeats,
        seed=args.seed,
    )
    print(experiments.format_scale_results(data))
    if args.output is not None:
        path = experiments.write_bench(data, args.output)
        print(f"\nbench document written to {path}")
    if args.check:
        problems = experiments.check_agreement(data)
        if problems:
            # check_agreement itself flags an empty pairing (a gate that
            # compared nothing must not pass); label the two failure
            # modes the way CI logs grep for them
            if not data["speedups"] and not data.get("dynamic_pairs"):
                print(f"CHECK INEFFECTIVE: {problems[0]}", file=sys.stderr)
            else:
                for problem in problems:
                    print(f"DISAGREEMENT: {problem}", file=sys.stderr)
            return 1
        print("paired engines agree on every shared grid cell")
    if args.baseline is not None:
        floors = experiments.load_floors(args.baseline)
        violations = experiments.check_floors(data, floors)
        if violations:
            for violation in violations:
                print(f"FLOOR: {violation}", file=sys.stderr)
            return 1
        print(f"all floors in {args.baseline} hold")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import time

    from .obs.profile import (
        coverage,
        format_overhead,
        format_top_spans,
        run_overhead_check,
        top_spans,
    )

    if args.overhead_check:
        result = run_overhead_check(repeats=args.repeats, tolerance=args.tolerance)
        print(format_overhead(result))
        return 0 if result["ok"] else 1

    if args.spec is not None and args.scale_preset is not None:
        raise SystemExit("error: --spec and --scale-preset are mutually exclusive")

    TRACER.enable()
    TRACER.clear()
    t0 = time.perf_counter()
    if args.scale_preset is not None:
        what = f"scale --preset {args.scale_preset}"
        with TRACER.span("profile.run", mode="scale", preset=args.scale_preset):
            data = experiments.run_scale(preset=args.scale_preset)
        tail = f"{len(data['rows'])} scale rows"
    elif args.spec is not None:
        what = f"sweep --spec {args.spec}"
        spec = experiments.SweepSpec.from_dict(json.loads(args.spec.read_text()))
        with TRACER.span("profile.run", mode="sweep", spec=str(args.spec)):
            result = experiments.run_sweep(spec)
        tail = f"{len(result.runs)} sweep runs"
    else:
        workloads = list(args.workload or ["poisson(load=0.5)"])
        what = f"dynamic {' '.join(workloads)}"
        spec = experiments.dynamic_grid_spec(
            topology=args.topology,
            workloads=workloads,
            algorithms=args.algorithms,
            seeds=args.seeds,
            engine=args.engine,
        )
        with TRACER.span("profile.run", mode="dynamic", topology=args.topology):
            result = experiments.run_sweep(spec)
        tail = f"{len(result.runs)} dynamic runs"
    wall_s = time.perf_counter() - t0
    TRACER.disable()

    spans = TRACER.spans()
    jsonl_path, perfetto_path = write_trace_files(args.output)
    print(f"profiled {what}: {tail}, {len(spans)} spans in {wall_s:.2f}s\n")
    print(format_top_spans(top_spans(spans, limit=args.limit), wall_s=wall_s))
    print(f"\nspan coverage: {coverage(spans):.1%} of traced wall time")
    print(f"trace written to {jsonl_path} and {perfetto_path}")
    return 0


def _cmd_graphs(args: argparse.Namespace) -> int:
    from .graphs.bench import run_graph_bench

    result = run_graph_bench(args.preset, engine=args.engine, jobs=args.jobs)
    print(experiments.format_sweep_results(result, max_rows=args.max_rows))
    print(
        f"\n{len(result.runs)} runs in {result.total_wall_time_s:.1f}s "
        f"(preset={args.preset}, engine={args.engine}, jobs={args.jobs})"
    )
    if args.output is not None:
        path = experiments.write_artifact(result, args.output)
        print(f"artifact written to {path}")
    if args.baseline is not None:
        baseline = experiments.load_artifact(args.baseline)
        comparison = experiments.sweep_compare(
            baseline, result.to_dict(), rel_tol=args.tolerance
        )
        print(experiments.format_sweep_compare(comparison))
        return 0 if comparison.ok else 1
    return 0


def _parse_bytes(text: str) -> int:
    """``'256M'`` → bytes; accepts plain integers and K/M/G suffixes."""
    scales = {"K": 1024, "M": 1024**2, "G": 1024**3}
    raw = text.strip().upper().removesuffix("B")
    scale = scales.get(raw[-1:], 1)
    digits = raw[:-1] if scale != 1 else raw
    try:
        return int(float(digits) * scale)
    except ValueError:
        raise SystemExit(
            f"error: cannot parse size {text!r} (try 1048576, 1M, 2.5G)"
        ) from None


def _cmd_store(args: argparse.Namespace) -> int:
    from .store import ArtifactStore

    store = ArtifactStore(args.store)
    report = store.gc(_parse_bytes(args.max_bytes), dry_run=args.dry_run)
    verb = "would evict" if report.dry_run else "evicted"
    for info in report.evicted:
        print(f"{verb} {info.digest}  {info.nbytes} bytes")
    print(
        f"{report.scanned} entries, {report.total_bytes} bytes scanned; "
        f"{verb} {len(report.evicted)} entries ({report.reclaimed_bytes} bytes), "
        f"{report.kept_bytes} bytes kept under {store.root}"
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    comparison = experiments.sweep_compare(
        experiments.load_artifact(args.baseline),
        experiments.load_artifact(args.current),
        rel_tol=args.tolerance,
        metrics=args.metrics,
    )
    print(experiments.format_sweep_compare(comparison))
    return 0 if comparison.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from . import lint as lint_mod

    if args.list_rules:
        for rid in lint_mod.rule_ids():
            rule = lint_mod.LINT_RULES.get(rid)
            print(f"{rule.id}  {rule.family:<15} {rule.name:<28} {rule.summary}")
        return 0
    selection = None
    if args.rules is not None:
        selection = [item for item in args.rules.split(",") if item.strip()]
    try:
        result = lint_mod.run_lint(args.paths, rules=selection)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(lint_mod.result_to_json(result))
    else:
        text = result.format_text(statistics=args.statistics)
        if text:
            print(text)
    return 0 if result.ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging(args.log_level)
    # --trace PREFIX (sweep/dynamic/scale/serve) or $REPRO_TRACE=<prefix>
    # wraps any command; `profile` drives the tracer itself.
    trace_prefix = getattr(args, "trace", None)
    if trace_prefix is None:
        trace_prefix = trace_prefix_from_env()
    if args.command == "profile":
        trace_prefix = None
    if trace_prefix is None:
        return _run(args)
    TRACER.enable()
    try:
        return _run(args)
    finally:
        TRACER.disable()
        jsonl_path, perfetto_path = write_trace_files(trace_prefix)
        print(f"trace written to {jsonl_path} and {perfetto_path}", file=sys.stderr)


def _run(args: argparse.Namespace) -> int:
    if args.command in ("fig2", "fig5"):
        fn = experiments.fig2 if args.command == "fig2" else experiments.fig5
        sweep = fn(args.app, w2_values=args.w2, seeds=args.seeds, engine=args.engine)
        print(experiments.format_sweep(sweep, title=f"{args.command} — {args.app}"))
    elif args.command == "fig3":
        print(experiments.format_fig3(experiments.fig3()))
    elif args.command == "fig4":
        result = experiments.fig4(args.w2, seeds=args.seeds)
        print(experiments.format_fig4(result))
    elif args.command == "table1":
        topo = parse_xgft(args.topology)
        print(experiments.format_table1(experiments.table1(topo), topo.spec()))
    elif args.command == "equivalence":
        result = experiments.equivalence(
            num_permutations=args.permutations, seed=args.seed
        )
        print(experiments.format_equivalence(result))
    elif args.command == "info":
        topo = parse_xgft(args.topology)
        print(ascii_art(topo))
        for key, value in cost_summary(topo).items():
            print(f"  {key:>22}: {value}")
    elif args.command == "eval":
        return _cmd_eval(args)
    elif args.command == "sweep":
        return _cmd_sweep(args)
    elif args.command == "faults":
        return _cmd_faults(args)
    elif args.command == "dynamic":
        return _cmd_dynamic(args)
    elif args.command == "scale":
        return _cmd_scale(args)
    elif args.command == "serve":
        return _cmd_serve(args)
    elif args.command == "compare":
        return _cmd_compare(args)
    elif args.command == "graphs":
        return _cmd_graphs(args)
    elif args.command == "lint":
        return _cmd_lint(args)
    elif args.command == "store":
        return _cmd_store(args)
    elif args.command == "profile":
        return _cmd_profile(args)
    else:  # pragma: no cover - argparse enforces choices
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
