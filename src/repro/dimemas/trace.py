"""Trace records for the MPI replay engine (the Dimemas substitute).

The original toolchain replays post-mortem traces: "the trace contains
the MPI calls the application performed, which in turn include the
communication pattern as well as the causal relationships between
messages" (paper Sec. VI-B).  We reproduce that with a compact per-rank
program of records; the causal relationships are exactly the MPI
matching/blocking semantics the replay engine enforces.

A plain-text serialization is provided so traces can be inspected,
diffed and stored — one record per line::

    <rank> compute <seconds>
    <rank> send <dst> <bytes> <tag>
    <rank> recv <src> <tag>
    <rank> isend <dst> <bytes> <tag>
    <rank> irecv <src> <tag>
    <rank> waitall
    <rank> sendrecv <peer> <bytes> <tag>
    <rank> barrier
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Union

__all__ = [
    "Compute",
    "Send",
    "Recv",
    "Isend",
    "Irecv",
    "WaitAll",
    "SendRecv",
    "Barrier",
    "Record",
    "Trace",
]


@dataclass(frozen=True)
class Compute:
    """Local computation for ``duration`` seconds."""

    duration: float

    def __post_init__(self):
        if self.duration < 0:
            raise ValueError("compute duration must be >= 0")


@dataclass(frozen=True)
class Send:
    """Blocking (rendezvous) send: returns when the transfer completes."""

    dst: int
    size: int
    tag: int = 0


@dataclass(frozen=True)
class Recv:
    """Blocking receive: returns when the matching transfer completes."""

    src: int
    tag: int = 0


@dataclass(frozen=True)
class Isend:
    """Non-blocking send; completed by a later :class:`WaitAll`."""

    dst: int
    size: int
    tag: int = 0


@dataclass(frozen=True)
class Irecv:
    """Non-blocking receive; completed by a later :class:`WaitAll`."""

    src: int
    tag: int = 0


@dataclass(frozen=True)
class WaitAll:
    """Block until every outstanding non-blocking operation of the rank
    has completed."""


@dataclass(frozen=True)
class SendRecv:
    """Simultaneous exchange with ``peer`` (both directions outstanding).

    Equivalent to ``Irecv(peer, tag); Isend(peer, size, tag); WaitAll()``
    — the idiom of the paper's pairwise-exchange phases.
    """

    peer: int
    size: int
    tag: int = 0


@dataclass(frozen=True)
class Barrier:
    """Global synchronization across all ranks of the trace."""


Record = Union[Compute, Send, Recv, Isend, Irecv, WaitAll, SendRecv, Barrier]


class Trace:
    """Per-rank programs plus the rank count."""

    def __init__(self, programs: Sequence[Sequence[Record]]):
        if not programs:
            raise ValueError("a trace needs at least one rank")
        self.programs: tuple[tuple[Record, ...], ...] = tuple(
            tuple(p) for p in programs
        )
        self.num_ranks = len(self.programs)
        self._validate()

    def _validate(self) -> None:
        n = self.num_ranks
        for rank, prog in enumerate(self.programs):
            for rec in prog:
                for attr in ("dst", "src", "peer"):
                    peer = getattr(rec, attr, None)
                    if peer is not None and not 0 <= peer < n:
                        raise ValueError(
                            f"rank {rank}: record {rec} references rank {peer} "
                            f"outside [0, {n})"
                        )
                    if peer == rank:
                        raise ValueError(f"rank {rank}: self-communication in {rec}")

    def __len__(self) -> int:
        return sum(len(p) for p in self.programs)

    def records(self) -> Iterator[tuple[int, Record]]:
        for rank, prog in enumerate(self.programs):
            for rec in prog:
                yield rank, rec

    # ------------------------------------------------------------------
    # Text round trip
    # ------------------------------------------------------------------
    def to_text(self) -> str:
        lines = [f"# dimemas-lite trace, {self.num_ranks} ranks"]
        for rank, rec in self.records():
            if isinstance(rec, Compute):
                lines.append(f"{rank} compute {rec.duration!r}")
            elif isinstance(rec, Send):
                lines.append(f"{rank} send {rec.dst} {rec.size} {rec.tag}")
            elif isinstance(rec, Recv):
                lines.append(f"{rank} recv {rec.src} {rec.tag}")
            elif isinstance(rec, Isend):
                lines.append(f"{rank} isend {rec.dst} {rec.size} {rec.tag}")
            elif isinstance(rec, Irecv):
                lines.append(f"{rank} irecv {rec.src} {rec.tag}")
            elif isinstance(rec, WaitAll):
                lines.append(f"{rank} waitall")
            elif isinstance(rec, SendRecv):
                lines.append(f"{rank} sendrecv {rec.peer} {rec.size} {rec.tag}")
            elif isinstance(rec, Barrier):
                lines.append(f"{rank} barrier")
            else:  # pragma: no cover - exhaustive
                raise TypeError(f"unknown record {rec!r}")
        return "\n".join(lines) + "\n"

    @staticmethod
    def from_text(text: str) -> "Trace":
        programs: dict[int, list[Record]] = {}
        max_rank = -1
        for lineno, raw in enumerate(text.splitlines(), 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            try:
                rank = int(parts[0])
                op = parts[1]
                rec: Record
                if op == "compute":
                    rec = Compute(float(parts[2]))
                elif op == "send":
                    rec = Send(int(parts[2]), int(parts[3]), int(parts[4]))
                elif op == "recv":
                    rec = Recv(int(parts[2]), int(parts[3]))
                elif op == "isend":
                    rec = Isend(int(parts[2]), int(parts[3]), int(parts[4]))
                elif op == "irecv":
                    rec = Irecv(int(parts[2]), int(parts[3]))
                elif op == "waitall":
                    rec = WaitAll()
                elif op == "sendrecv":
                    rec = SendRecv(int(parts[2]), int(parts[3]), int(parts[4]))
                elif op == "barrier":
                    rec = Barrier()
                else:
                    raise ValueError(f"unknown op {op!r}")
            except (IndexError, ValueError) as exc:
                raise ValueError(f"line {lineno}: cannot parse {raw!r}") from exc
            programs.setdefault(rank, []).append(rec)
            max_rank = max(max_rank, rank)
        return Trace([programs.get(r, []) for r in range(max_rank + 1)])
