"""Trace-driven MPI replay coupled to a network model (Dimemas + Venus).

The paper co-simulates: Dimemas replays the MPI call sequence and asks
the network simulator for transfer times, which in turn depend on the
routes and on which transfers overlap.  This module is that coupling:

* each rank executes its :class:`~repro.dimemas.trace.Trace` program,
  blocking on MPI semantics (rendezvous sends, matching receives,
  waitall, barriers);
* point-to-point transfers are handed to a *transfer network* — any
  object implementing :class:`TransferNetwork` — which simulates them
  with whatever fidelity it provides (max-min fluid over an XGFT, the
  ideal crossbar, or the classic Dimemas bus model in
  :mod:`repro.dimemas.busmodel`);
* the replay clock and the network clock advance in lockstep.

Message matching uses (src, dst, tag) FIFO order — the MPI
non-overtaking rule — and a transfer begins when *both* sides have
posted (rendezvous; appropriate for the paper's multi-hundred-KB
messages, which are far above any eager threshold).
"""

from __future__ import annotations

import heapq
import math
from abc import ABC, abstractmethod
from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Sequence

from ..core.base import RoutingAlgorithm
from ..sim.config import NetworkConfig, PAPER_CONFIG
from ..sim.fluid import FluidSimulator
from ..sim.network import crossbar_link_space, xgft_link_space
from ..topology import XGFT
from .trace import (
    Barrier,
    Compute,
    Irecv,
    Isend,
    Recv,
    Record,
    Send,
    SendRecv,
    Trace,
    WaitAll,
)

__all__ = [
    "TransferNetwork",
    "FluidTransferNetwork",
    "CrossbarTransferNetwork",
    "ReplayResult",
    "ReplayEngine",
    "replay_on_xgft",
    "replay_on_crossbar",
]

_EPS = 1e-12


class TransferNetwork(ABC):
    """Minimal interface the replay engine needs from a network model."""

    @property
    @abstractmethod
    def now(self) -> float:
        """Current simulated time of the network model."""

    @abstractmethod
    def start_transfer(self, transfer_id: int, src: int, dst: int, size: int) -> None:
        """Begin a transfer at the current time."""

    @abstractmethod
    def next_completion_time(self) -> float | None:
        """Absolute time of the next completion, or None when idle."""

    @abstractmethod
    def advance_to(self, t: float) -> list[int]:
        """Advance the clock to ``t`` (never past the next completion);
        return ids of transfers that completed exactly at ``t``."""


class FluidTransferNetwork(TransferNetwork):
    """Max-min fluid XGFT network for the replay engine.

    Routes come from a :class:`~repro.core.base.RoutingAlgorithm`;
    ``mapping[rank]`` places ranks on leaves (sequential default).
    """

    def __init__(
        self,
        topo: XGFT,
        algorithm: RoutingAlgorithm,
        config: NetworkConfig = PAPER_CONFIG,
        mapping: Sequence[int] | None = None,
    ):
        self.topo = topo
        self.algorithm = algorithm
        self.space = xgft_link_space(topo)
        self.sim = FluidSimulator(self.space.num_links, config.link_bandwidth)
        self.mapping = list(mapping) if mapping is not None else list(range(topo.num_leaves))

    @property
    def now(self) -> float:
        return self.sim.now

    def start_transfer(self, transfer_id: int, src: int, dst: int, size: int) -> None:
        s, d = self.mapping[src], self.mapping[dst]
        route = self.algorithm.route(s, d)
        links = list(route.links(self.topo))
        links.append(self.space.injection(s))
        links.append(self.space.ejection(d))
        self.sim.add_flow(transfer_id, links, float(size))

    def next_completion_time(self) -> float | None:
        return self.sim.next_completion_time()

    def advance_to(self, t: float) -> list[int]:
        return [r.flow_id for r in self.sim.advance_to(t)]


class CrossbarTransferNetwork(TransferNetwork):
    """The ideal single-stage crossbar as a replay network."""

    def __init__(
        self,
        num_leaves: int,
        config: NetworkConfig = PAPER_CONFIG,
        mapping: Sequence[int] | None = None,
    ):
        self.space = crossbar_link_space(num_leaves)
        self.sim = FluidSimulator(self.space.num_links, config.link_bandwidth)
        self.mapping = list(mapping) if mapping is not None else list(range(num_leaves))

    @property
    def now(self) -> float:
        return self.sim.now

    def start_transfer(self, transfer_id: int, src: int, dst: int, size: int) -> None:
        s, d = self.mapping[src], self.mapping[dst]
        self.sim.add_flow(
            transfer_id, [self.space.injection(s), self.space.ejection(d)], float(size)
        )

    def next_completion_time(self) -> float | None:
        return self.sim.next_completion_time()

    def advance_to(self, t: float) -> list[int]:
        return [r.flow_id for r in self.sim.advance_to(t)]


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of a trace replay."""

    total_time: float
    rank_finish: tuple[float, ...]
    num_transfers: int

    @property
    def makespan(self) -> float:
        return self.total_time


class _RankState:
    __slots__ = ("pc", "time", "blocked", "outstanding", "expanded")

    def __init__(self) -> None:
        self.pc = 0  # program counter into the trace program
        self.time = 0.0  # local clock
        self.blocked: str | None = None  # None / "waitall" / "barrier"
        self.outstanding: set[int] = set()  # pending op ids
        # Send/Recv/SendRecv are expanded into primitive ops lazily
        self.expanded: deque[Record] = deque()


class ReplayEngine:
    """Replays a trace over a transfer network (deterministic)."""

    def __init__(self, trace: Trace, network: TransferNetwork):
        self.trace = trace
        self.network = network
        self._ranks = [_RankState() for _ in range(trace.num_ranks)]
        # rendezvous matching queues keyed by (src, dst, tag), FIFO
        self._pending_sends: defaultdict[tuple[int, int, int], deque] = defaultdict(deque)
        self._pending_recvs: defaultdict[tuple[int, int, int], deque] = defaultdict(deque)
        self._next_op = 0
        self._next_transfer = 0
        #: transfer id -> (send op, recv op, sender rank, receiver rank)
        self._transfers: dict[int, tuple[int, int, int, int]] = {}
        self._barrier_waiting: set[int] = set()
        self._ready: list[tuple[float, int]] = []

    # ------------------------------------------------------------------
    def run(self, max_iterations: int | None = None) -> ReplayResult:
        ready = self._ready
        for r in range(self.trace.num_ranks):
            heapq.heappush(ready, (0.0, r))
        iterations = 0
        while ready or self.network.next_completion_time() is not None:
            iterations += 1
            if max_iterations is not None and iterations > max_iterations:
                raise RuntimeError("replay exceeded its iteration budget")
            t_rank = ready[0][0] if ready else math.inf
            t_net = self.network.next_completion_time()
            t_net = math.inf if t_net is None else t_net
            if t_net < t_rank - _EPS:
                for tid in self.network.advance_to(t_net):
                    self._complete_transfer(tid, t_net)
                continue
            if not ready:  # pragma: no cover - defensive
                break
            t, rank = heapq.heappop(ready)
            # catch the network up to the rank event, absorbing any
            # completions that land exactly on the way
            target = min(t, t_net)
            for tid in self.network.advance_to(target):
                self._complete_transfer(tid, self.network.now)
            if self.network.now < t - _EPS:
                heapq.heappush(ready, (t, rank))
                continue
            self._step_rank(rank, t)

        times = tuple(st.time for st in self._ranks)
        unfinished = [
            r
            for r, st in enumerate(self._ranks)
            if st.pc < len(self.trace.programs[r]) or st.expanded or st.blocked
        ]
        if unfinished:
            raise RuntimeError(
                f"replay deadlock: ranks {unfinished[:8]} did not finish "
                "(unmatched sends/recvs or a barrier mismatch in the trace?)"
            )
        return ReplayResult(max(times, default=0.0), times, self._next_transfer)

    def _wake(self, rank: int, t: float) -> None:
        heapq.heappush(self._ready, (t, rank))

    # ------------------------------------------------------------------
    def _step_rank(self, rank: int, t: float) -> None:
        """Run ``rank`` from time ``t`` until it blocks or finishes."""
        st = self._ranks[rank]
        st.time = max(st.time, t)
        prog = self.trace.programs[rank]
        while True:
            if st.expanded:
                rec = st.expanded.popleft()
            elif st.pc < len(prog):
                rec = prog[st.pc]
                st.pc += 1
            else:
                return  # program finished
            if isinstance(rec, Compute):
                st.time += rec.duration
                self._wake(rank, st.time)
                return
            if isinstance(rec, SendRecv):
                st.expanded.extend(
                    [Irecv(rec.peer, rec.tag), Isend(rec.peer, rec.size, rec.tag), WaitAll()]
                )
                continue
            if isinstance(rec, Send):
                st.expanded.extend([Isend(rec.dst, rec.size, rec.tag), WaitAll()])
                continue
            if isinstance(rec, Recv):
                st.expanded.extend([Irecv(rec.src, rec.tag), WaitAll()])
                continue
            if isinstance(rec, Isend):
                self._post_send(rank, rec)
                continue
            if isinstance(rec, Irecv):
                self._post_recv(rank, rec)
                continue
            if isinstance(rec, WaitAll):
                if st.outstanding:
                    st.blocked = "waitall"
                    return
                continue
            if isinstance(rec, Barrier):
                self._barrier_waiting.add(rank)
                if len(self._barrier_waiting) == self.trace.num_ranks:
                    release = max(
                        self._ranks[r].time for r in self._barrier_waiting
                    )
                    for r in sorted(self._barrier_waiting):
                        other = self._ranks[r]
                        other.blocked = None
                        other.time = max(other.time, release)
                        if r != rank:
                            self._wake(r, other.time)
                    self._barrier_waiting.clear()
                    st.time = max(st.time, release)
                    continue
                st.blocked = "barrier"
                return
            raise TypeError(f"unknown record {rec!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Posting and matching
    # ------------------------------------------------------------------
    def _new_op(self, rank: int) -> int:
        op = self._next_op
        self._next_op += 1
        self._ranks[rank].outstanding.add(op)
        return op

    def _post_send(self, rank: int, rec: Isend) -> None:
        op = self._new_op(rank)
        key = (rank, rec.dst, rec.tag)
        recvs = self._pending_recvs[key]
        if recvs:
            recv_op, recv_rank = recvs.popleft()
            self._launch(op, recv_op, rank, recv_rank, rec.size)
        else:
            self._pending_sends[key].append((op, rank, rec.size))

    def _post_recv(self, rank: int, rec: Irecv) -> None:
        op = self._new_op(rank)
        key = (rec.src, rank, rec.tag)
        sends = self._pending_sends[key]
        if sends:
            send_op, send_rank, size = sends.popleft()
            self._launch(send_op, op, send_rank, rank, size)
        else:
            self._pending_recvs[key].append((op, rank))

    def _launch(self, send_op: int, recv_op: int, src: int, dst: int, size: int) -> None:
        tid = self._next_transfer
        self._next_transfer += 1
        self._transfers[tid] = (send_op, recv_op, src, dst)
        self.network.start_transfer(tid, src, dst, size)

    def _complete_transfer(self, tid: int, t: float) -> None:
        send_op, recv_op, src, dst = self._transfers.pop(tid)
        for rank, op in ((src, send_op), (dst, recv_op)):
            st = self._ranks[rank]
            st.outstanding.discard(op)
            if st.blocked == "waitall" and not st.outstanding:
                st.blocked = None
                st.time = max(st.time, t)
                self._wake(rank, st.time)


# ----------------------------------------------------------------------
# Convenience drivers
# ----------------------------------------------------------------------
def replay_on_xgft(
    trace: Trace,
    topo: XGFT,
    algorithm: RoutingAlgorithm,
    config: NetworkConfig = PAPER_CONFIG,
    mapping: Sequence[int] | None = None,
) -> ReplayResult:
    """Replay a trace on an XGFT with a given routing scheme."""
    return ReplayEngine(trace, FluidTransferNetwork(topo, algorithm, config, mapping)).run()


def replay_on_crossbar(
    trace: Trace,
    num_leaves: int,
    config: NetworkConfig = PAPER_CONFIG,
    mapping: Sequence[int] | None = None,
) -> ReplayResult:
    """Replay a trace on the ideal Full-Crossbar reference."""
    return ReplayEngine(trace, CrossbarTransferNetwork(num_leaves, config, mapping)).run()
