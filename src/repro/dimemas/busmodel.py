"""The classic Dimemas parametric bus network model.

Dimemas' native network abstraction (paper ref. [19]): each node has one
input and one output port; the machine has ``B`` shared buses (``B =
None`` means unlimited).  A transfer needs its sender's output port, its
receiver's input port and one bus for its whole duration, which is
``latency + size / bandwidth``.  Contended resources are granted in
strict FIFO request order.

The replay engine accepts this model through the same
:class:`~repro.dimemas.replay.TransferNetwork` interface as the fluid
XGFT model, so the same trace can be replayed under either network
abstraction — that is exactly the Dimemas/Venus split of the paper's
toolchain.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

from ..sim.config import NetworkConfig, PAPER_CONFIG
from .replay import TransferNetwork

__all__ = ["BusTransferNetwork"]

_EPS = 1e-12


@dataclass
class _PendingTransfer:
    tid: int
    src: int
    dst: int
    size: int
    arrival_seq: int
    finish: float | None = None  # None while queued


class BusTransferNetwork(TransferNetwork):
    """FIFO bus-model network (Dimemas semantics).

    Parameters
    ----------
    num_nodes:
        Number of endpoints.
    config:
        Bandwidth is taken from ``config.link_bandwidth``.
    buses:
        Number of concurrent transfers the backplane supports
        (``None`` = unlimited, Dimemas' default "ideal" setting).
    latency:
        Per-transfer startup latency in seconds.
    """

    def __init__(
        self,
        num_nodes: int,
        config: NetworkConfig = PAPER_CONFIG,
        buses: int | None = None,
        latency: float = 0.0,
    ):
        if num_nodes <= 0:
            raise ValueError("need at least one node")
        if buses is not None and buses < 1:
            raise ValueError("need at least one bus (or None for unlimited)")
        if latency < 0:
            raise ValueError("latency must be >= 0")
        self.num_nodes = num_nodes
        self.config = config
        self.buses = buses
        self.latency = latency
        self._now = 0.0
        self._seq = 0
        self._queue: deque[_PendingTransfer] = deque()
        self._active: dict[int, _PendingTransfer] = {}
        self._out_busy: set[int] = set()
        self._in_busy: set[int] = set()

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    def start_transfer(self, transfer_id: int, src: int, dst: int, size: int) -> None:
        if not (0 <= src < self.num_nodes and 0 <= dst < self.num_nodes):
            raise ValueError(f"endpoints ({src}, {dst}) out of range")
        tr = _PendingTransfer(transfer_id, src, dst, size, self._seq)
        self._seq += 1
        self._queue.append(tr)
        self._dispatch()

    def _dispatch(self) -> None:
        """Grant resources to queued transfers in FIFO order.

        FIFO is strict: a blocked head does not let later transfers jump
        the queue for the same resources (Dimemas' in-order port grant).
        """
        progressed = True
        while progressed:
            progressed = False
            blocked_out: set[int] = set()
            blocked_in: set[int] = set()
            remaining: deque[_PendingTransfer] = deque()
            for tr in self._queue:
                bus_free = self.buses is None or len(self._active) < self.buses
                can_go = (
                    bus_free
                    and tr.src not in self._out_busy
                    and tr.src not in blocked_out
                    and tr.dst not in self._in_busy
                    and tr.dst not in blocked_in
                )
                if can_go:
                    tr.finish = (
                        self._now + self.latency + tr.size / self.config.link_bandwidth
                    )
                    self._active[tr.tid] = tr
                    self._out_busy.add(tr.src)
                    self._in_busy.add(tr.dst)
                    progressed = True
                else:
                    # the ports this transfer is waiting for are reserved
                    # for it: later arrivals must not overtake (FIFO)
                    blocked_out.add(tr.src)
                    blocked_in.add(tr.dst)
                    remaining.append(tr)
            self._queue = remaining

    def next_completion_time(self) -> float | None:
        if not self._active:
            return None
        return min(tr.finish for tr in self._active.values())  # type: ignore[arg-type]

    def advance_to(self, t: float) -> list[int]:
        if t < self._now - _EPS:
            raise ValueError(f"cannot rewind time: {t} < {self._now}")
        nc = self.next_completion_time()
        if nc is not None and t > nc + _EPS:
            raise ValueError(f"advance_to({t}) would skip a completion at {nc}")
        self._now = max(self._now, t)
        finished = [
            tid
            for tid, tr in self._active.items()
            if tr.finish is not None and tr.finish <= self._now + _EPS
        ]
        for tid in sorted(finished):
            tr = self._active.pop(tid)
            self._out_busy.discard(tr.src)
            self._in_busy.discard(tr.dst)
        if finished:
            self._dispatch()
        return sorted(finished)
