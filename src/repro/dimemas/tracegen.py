"""Synthetic trace generators for the paper's applications.

These stand in for the proprietary post-mortem traces (DESIGN.md,
substitutions): they emit the MPI call structure the paper documents for
WRF-256 and NAS CG.D-128, with configurable iteration counts and
compute-phase durations.  A generic pattern-to-trace converter is also
provided so any :class:`~repro.patterns.base.Pattern` can be replayed.
"""

from __future__ import annotations

from ..patterns.applications import (
    CG_PHASE_MESSAGE,
    WRF_DEFAULT_MESSAGE,
    cg_grid,
    cg_transpose_exchange,
)
from ..patterns.base import Pattern
from .trace import (
    Barrier,
    Compute,
    Irecv,
    Isend,
    Record,
    SendRecv,
    Trace,
    WaitAll,
)

__all__ = ["wrf_trace", "cg_trace", "pattern_trace"]


def wrf_trace(
    n: int = 256,
    row: int = 16,
    iterations: int = 1,
    message_size: int = WRF_DEFAULT_MESSAGE,
    compute_time: float = 0.0,
) -> Trace:
    """WRF's halo exchange as a trace.

    Per iteration every task posts non-blocking receives and sends to its
    ±row neighbours ("two outstanding communications"), waits for all,
    then computes.
    """
    if n % row:
        raise ValueError(f"n={n} must be a multiple of the mesh row {row}")
    programs: list[list[Record]] = []
    for me in range(n):
        prog: list[Record] = []
        for _ in range(iterations):
            neighbours = [p for p in (me - row, me + row) if 0 <= p < n]
            for peer in neighbours:
                prog.append(Irecv(peer, tag=0))
            for peer in neighbours:
                prog.append(Isend(peer, message_size, tag=0))
            prog.append(WaitAll())
            if compute_time > 0:
                prog.append(Compute(compute_time))
        programs.append(prog)
    return Trace(programs)


def cg_trace(
    n: int = 128,
    iterations: int = 1,
    message_size: int = CG_PHASE_MESSAGE,
    compute_time: float = 0.0,
) -> Trace:
    """NAS CG's five-phase exchange structure as a trace.

    Per iteration: ``log2(npcols)`` row-internal reduce exchanges
    (switch-local under sequential mapping with 16-wide rows) followed by
    the transpose-pair exchange, each as a blocking SendRecv — matching
    the data dependency chain of the CG solve (each phase consumes the
    previous one's result).
    """
    nprows, npcols = cg_grid(n)
    l2 = npcols.bit_length() - 1
    transpose = {s: d for s, d in cg_transpose_exchange(n)}
    programs: list[list[Record]] = []
    for me in range(n):
        prog: list[Record] = []
        for _ in range(iterations):
            for p in range(l2):
                prog.append(SendRecv(me ^ (1 << p), message_size, tag=p))
            peer = transpose.get(me)
            if peer is not None:
                prog.append(SendRecv(peer, message_size, tag=l2))
            if compute_time > 0:
                prog.append(Compute(compute_time))
        programs.append(prog)
    return Trace(programs)


def pattern_trace(
    pattern: Pattern,
    barrier_between_phases: bool = True,
    compute_time: float = 0.0,
) -> Trace:
    """Convert any multi-phase pattern into a replayable trace.

    Each phase becomes: post all receives, post all sends, wait — i.e.
    every flow of the phase outstanding simultaneously, with an optional
    global barrier separating phases (the bulk-synchronous semantics the
    figure harness also uses; disabling the barrier lets phases of
    different ranks slide past each other as in a real run).
    """
    n = pattern.num_ranks
    programs: list[list[Record]] = [[] for _ in range(n)]
    for tag, phase in enumerate(pattern.phases):
        sends: dict[int, list] = {r: [] for r in range(n)}
        recvs: dict[int, list] = {r: [] for r in range(n)}
        for f in phase.flows:
            if f.src == f.dst:
                continue
            sends[f.src].append(Isend(f.dst, f.size, tag=tag))
            recvs[f.dst].append(Irecv(f.src, tag=tag))
        for r in range(n):
            programs[r].extend(recvs[r])
            programs[r].extend(sends[r])
            if recvs[r] or sends[r]:
                programs[r].append(WaitAll())
            if compute_time > 0:
                programs[r].append(Compute(compute_time))
            if barrier_between_phases:
                programs[r].append(Barrier())
    return Trace(programs)
