"""Trace-driven MPI replay (the Dimemas substitute, paper Sec. VI-B).

* :mod:`repro.dimemas.trace` — trace records and text (de)serialization;
* :mod:`repro.dimemas.tracegen` — synthetic WRF / NAS-CG trace builders;
* :mod:`repro.dimemas.replay` — the replay engine and its network
  couplings (fluid XGFT, crossbar);
* :mod:`repro.dimemas.busmodel` — the classic Dimemas bus model.
"""

from .busmodel import BusTransferNetwork
from .replay import (
    CrossbarTransferNetwork,
    FluidTransferNetwork,
    ReplayEngine,
    ReplayResult,
    TransferNetwork,
    replay_on_crossbar,
    replay_on_xgft,
)
from .trace import (
    Barrier,
    Compute,
    Irecv,
    Isend,
    Record,
    Recv,
    Send,
    SendRecv,
    Trace,
    WaitAll,
)
from .tracegen import cg_trace, pattern_trace, wrf_trace

__all__ = [
    "Trace",
    "Record",
    "Compute",
    "Send",
    "Recv",
    "Isend",
    "Irecv",
    "WaitAll",
    "SendRecv",
    "Barrier",
    "ReplayEngine",
    "ReplayResult",
    "TransferNetwork",
    "FluidTransferNetwork",
    "CrossbarTransferNetwork",
    "BusTransferNetwork",
    "replay_on_xgft",
    "replay_on_crossbar",
    "wrf_trace",
    "cg_trace",
    "pattern_trace",
]
