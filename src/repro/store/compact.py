"""The compressed columnar route-table format.

The production artifact an oblivious scheme ships is its all-pairs route
table.  Stored naively (struct-of-arrays ``RouteTable``: int64 ``src``,
``dst``, ``nca_level`` plus an ``(F, h)`` int64 port matrix) a
2048-leaf table costs ~40 bytes/route.  XGFT structure makes almost all
of that redundant — the insight *Compact Oblivious Routing* (Räcke &
Schmid) and its weighted-graph sequel push to sublinear tables:

* **all-pairs order is implicit** — the canonical table enumerates
  ordered pairs source-major with the diagonal removed, so ``src``/
  ``dst`` regenerate from the row index and ``nca_level`` from the
  topology's digit arithmetic; none of the three needs storing;
* **destination-deterministic schemes collapse to per-destination
  rows** — D-mod-k and r-NCA-d choose every up-port from the
  destination alone, so a level's whole ``F``-entry column compresses
  to ``n`` entries (``columnar`` encoding; source-deterministic
  S-mod-k / r-NCA-u collapse the same way onto the source axis);
* **randomized NCA tables dedupe shared up-path prefixes** — Random
  NCA draws, per pair, one of at most ``w_1 * ... * w_h`` distinct
  up-path prefixes, so the port matrix compresses to a tiny prefix
  dictionary plus one small code per route (``prefix-dict`` encoding);
* anything else falls back to ``dense``: per-level columns at the
  minimal unsigned dtype the level's ``w_i`` needs (still 8-16x under
  the int64 matrix).

:meth:`CompactRouteTable.encode` picks the cheapest applicable encoding
and the decode (:meth:`CompactRouteTable.to_table`) is bit-exact for
every table.  All payloads are flat NumPy arrays, so a stored entry
memory-maps (:mod:`repro.store.artifact`) and batch lookups gather
straight from the mapped columns without materializing the table.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

import numpy as np

from ..topology import XGFT

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..core.route import Route, RouteTable

__all__ = ["CompactRouteTable", "FORMAT_VERSION"]

#: on-disk format version; readers refuse entries from another major
FORMAT_VERSION = 1

ENCODINGS = ("columnar", "prefix-dict", "dense")


def _uint_dtype(max_value: int) -> np.dtype:
    """The smallest unsigned dtype that holds ``max_value`` (>= 0)."""
    for dt in (np.uint8, np.uint16, np.uint32):
        if max_value <= np.iinfo(dt).max:
            return np.dtype(dt)
    return np.dtype(np.uint64)


def _all_pairs_endpoints(n: int) -> tuple[np.ndarray, np.ndarray]:
    """The canonical all-pairs enumeration (source-major, no diagonal)."""
    src, dst = np.divmod(np.arange(n * n, dtype=np.int64), n)
    keep = src != dst
    return src[keep], dst[keep]


def _all_pairs_rows(n: int, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Row index of ``(src, dst)`` in the canonical all-pairs order."""
    return src * (n - 1) + dst - (dst > src)


class CompactRouteTable:
    """A route table in the compressed columnar format.

    Build one with :meth:`encode` (or
    :meth:`repro.core.route.RouteTable.to_compact`); reopen stored ones
    through :class:`repro.store.ArtifactStore`, whose arrays arrive
    memory-mapped.  The query surface (:meth:`lookup`,
    :meth:`batch_lookup`) answers straight from the compact columns —
    opening and querying a multi-million-route table never materializes
    the struct-of-arrays form.

    Parameters (use the constructors above rather than ``__init__``)
    ----------
    topo: the topology.
    kind: ``"all-pairs"`` (canonical enumeration, endpoints implicit)
        or ``"pairs"`` (explicit ``src``/``dst`` payload arrays).
    encoding: one of :data:`ENCODINGS` (module docstring).
    num_routes: ``F``.
    meta: the encoding descriptor (JSON-safe; persisted verbatim).
    arrays: the payload arrays, named per the descriptor.
    """

    def __init__(
        self,
        topo: XGFT,
        kind: str,
        encoding: str,
        num_routes: int,
        meta: dict,
        arrays: Mapping[str, np.ndarray],
    ):
        if encoding not in ENCODINGS:
            raise ValueError(f"unknown encoding {encoding!r}; known: {', '.join(ENCODINGS)}")
        if kind not in ("all-pairs", "pairs"):
            raise ValueError(f"unknown table kind {kind!r}")
        self.topo = topo
        self.kind = kind
        self.encoding = encoding
        self.num_routes = int(num_routes)
        self.meta = dict(meta)
        self.arrays = dict(arrays)
        self._endpoints: tuple[np.ndarray, np.ndarray] | None = None
        self._nca: np.ndarray | None = None
        self._pair_rows: np.ndarray | None = None

    def __len__(self) -> int:
        return self.num_routes

    @property
    def nbytes(self) -> int:
        """Bytes held by the compact payload arrays."""
        return int(sum(a.nbytes for a in self.arrays.values()))

    @property
    def bytes_per_route(self) -> float:
        return self.nbytes / self.num_routes if self.num_routes else 0.0

    def describe(self) -> dict:
        """The JSON-safe format descriptor (persisted as ``meta.json``)."""
        return {
            "format_version": FORMAT_VERSION,
            "topology": self.topo.spec(),
            "kind": self.kind,
            "encoding": self.encoding,
            "num_routes": self.num_routes,
            "num_leaves": self.topo.num_leaves,
            "nbytes": self.nbytes,
            **self.meta,
        }

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    @classmethod
    def encode(cls, table: "RouteTable") -> "CompactRouteTable":
        """Compress a :class:`~repro.core.route.RouteTable` losslessly.

        Encoding choice: ``columnar`` whenever every level's active
        ports are a pure function of one endpoint (and the inactive
        entries are the canonical 0), else the cheaper of
        ``prefix-dict`` and ``dense``.
        """
        topo = table.topo
        n = topo.num_leaves
        F = len(table)
        meta: dict = {}
        arrays: dict[str, np.ndarray] = {}

        kind = "pairs"
        if F == n * (n - 1):
            c_src, c_dst = _all_pairs_endpoints(n)
            if np.array_equal(table.src, c_src) and np.array_equal(table.dst, c_dst):
                kind = "all-pairs"
        if kind == "pairs":
            ep_dtype = _uint_dtype(max(n - 1, 0))
            arrays["src"] = table.src.astype(ep_dtype)
            arrays["dst"] = table.dst.astype(ep_dtype)

        # nca_level is recomputed from the endpoints at decode; tables
        # whose stored levels disagree (hand-built) keep an explicit copy
        recomputed = topo.nca_level_array(table.src, table.dst)
        if not np.array_equal(recomputed, table.nca_level):
            arrays["nca"] = table.nca_level.astype(_uint_dtype(topo.h))
            meta["explicit_nca"] = True

        columnar = cls._try_columnar(table)
        if columnar is not None:
            axes, cols = columnar
            meta["column_axes"] = list(axes)
            for i, col in enumerate(cols):
                arrays[f"col{i}"] = col
            return cls(topo, kind, "columnar", F, meta, arrays)

        # prefix-dict vs dense: pick by cost
        prefixes, codes = np.unique(table.ports, axis=0, return_inverse=True)
        port_dtype = _uint_dtype(max(topo.w) - 1 if topo.w else 0)
        code_dtype = _uint_dtype(max(len(prefixes) - 1, 0))
        dict_cost = F * code_dtype.itemsize + prefixes.size * port_dtype.itemsize
        dense_cost = sum(
            F * _uint_dtype(topo.w[i] - 1).itemsize for i in range(topo.h)
        )
        if dict_cost <= dense_cost:
            arrays["codes"] = codes.astype(code_dtype)
            arrays["prefixes"] = prefixes.astype(port_dtype)
            meta["num_prefixes"] = int(len(prefixes))
            return cls(topo, kind, "prefix-dict", F, meta, arrays)
        for i in range(topo.h):
            arrays[f"level{i}"] = table.ports[:, i].astype(_uint_dtype(topo.w[i] - 1))
        return cls(topo, kind, "dense", F, meta, arrays)

    @staticmethod
    def _try_columnar(table: "RouteTable") -> tuple[list[str], list[np.ndarray]] | None:
        """Per-endpoint column collapse, or ``None`` if any level resists.

        A level collapses onto an axis iff (a) all rows active at that
        level agree on one port per endpoint id and (b) the inactive
        entries are 0 (the canonical padding the decoder regenerates).
        """
        topo = table.topo
        axes: list[str] = []
        cols: list[np.ndarray] = []
        n = topo.num_leaves
        for i in range(topo.h):
            active = table.nca_level > i
            if table.ports[~active, i].any():
                return None  # non-canonical padding: only dict/dense are exact
            vals = table.ports[active, i]
            chosen = None
            for axis, ids_full in (("dst", table.dst), ("src", table.src)):
                ids = ids_full[active]
                col = np.zeros(n, dtype=np.int64)
                col[ids] = vals
                if np.array_equal(col[ids], vals):
                    chosen = (axis, col.astype(_uint_dtype(topo.w[i] - 1)))
                    break
            if chosen is None:
                return None
            axes.append(chosen[0])
            cols.append(chosen[1])
        return axes, cols

    # ------------------------------------------------------------------
    # Decoding / materialization
    # ------------------------------------------------------------------
    def endpoints(self) -> tuple[np.ndarray, np.ndarray]:
        """``(src, dst)`` int64 arrays (regenerated for all-pairs kind)."""
        if self._endpoints is None:
            if self.kind == "all-pairs":
                self._endpoints = _all_pairs_endpoints(self.topo.num_leaves)
            else:
                self._endpoints = (
                    np.asarray(self.arrays["src"], dtype=np.int64),
                    np.asarray(self.arrays["dst"], dtype=np.int64),
                )
        return self._endpoints

    def nca_levels(self) -> np.ndarray:
        """``(F,)`` int64 NCA levels (recomputed unless stored explicit)."""
        if self._nca is None:
            if self.meta.get("explicit_nca"):
                self._nca = np.asarray(self.arrays["nca"], dtype=np.int64)
            else:
                src, dst = self.endpoints()
                self._nca = self.topo.nca_level_array(src, dst)
        return self._nca

    def _decode_ports(
        self, src: np.ndarray, dst: np.ndarray, nca: np.ndarray, rows: np.ndarray | None
    ) -> np.ndarray:
        """The ``(B, h)`` int64 port matrix for the given rows.

        ``rows`` indexes the stored route order; the columnar encoding
        ignores it (ports come from the endpoints alone).
        """
        topo = self.topo
        out = np.zeros((len(src), topo.h), dtype=np.int64)
        if self.encoding == "columnar":
            for i, axis in enumerate(self.meta["column_axes"]):
                ids = dst if axis == "dst" else src
                out[:, i] = np.where(nca > i, np.asarray(self.arrays[f"col{i}"])[ids], 0)
            return out
        assert rows is not None
        if self.encoding == "prefix-dict":
            prefixes = np.asarray(self.arrays["prefixes"], dtype=np.int64)
            codes = np.asarray(self.arrays["codes"])[rows]
            return prefixes[codes]
        for i in range(topo.h):
            out[:, i] = np.asarray(self.arrays[f"level{i}"])[rows]
        return out

    def to_table(self) -> "RouteTable":
        """Decode the full struct-of-arrays :class:`~repro.core.route.RouteTable`.

        Bit-exact inverse of :meth:`encode`.
        """
        from ..core.route import RouteTable

        src, dst = self.endpoints()
        nca = self.nca_levels()
        rows = np.arange(self.num_routes, dtype=np.int64)
        ports = self._decode_ports(src, dst, nca, rows)
        return RouteTable(self.topo, src.copy(), dst.copy(), nca.copy(), ports)

    # ------------------------------------------------------------------
    # Query surface
    # ------------------------------------------------------------------
    def _rows_for(self, srcs: np.ndarray, dsts: np.ndarray) -> np.ndarray:
        """Stored-row indices for pairs; ``KeyError`` on a missing pair."""
        n = self.topo.num_leaves
        if self.kind == "all-pairs":
            if (srcs == dsts).any():
                f = int(np.nonzero(srcs == dsts)[0][0])
                raise KeyError(
                    f"pair ({int(srcs[f])}, {int(dsts[f])}) has no route "
                    "in an all-pairs table (self-pair)"
                )
            return _all_pairs_rows(n, srcs, dsts)
        if self._pair_rows is None:
            src, dst = self.endpoints()
            rows = np.full(n * n, -1, dtype=np.int64)
            rows[src[::-1] * n + dst[::-1]] = np.arange(
                self.num_routes - 1, -1, -1, dtype=np.int64
            )
            self._pair_rows = rows
        idx = self._pair_rows[srcs * n + dsts]
        missing = np.nonzero(idx < 0)[0]
        if len(missing):
            f = int(missing[0])
            raise KeyError(
                f"pair ({int(srcs[f])}, {int(dsts[f])}) has no route in this table"
            )
        return idx

    def batch_lookup(
        self, srcs: np.ndarray, dsts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized lookup: ``(nca_levels (B,), ports (B, h))`` int64.

        Gathers straight from the compact columns — the serving hot
        path; no full-table materialization, mmap-friendly.
        """
        srcs = np.asarray(srcs, dtype=np.int64)
        dsts = np.asarray(dsts, dtype=np.int64)
        if srcs.shape != dsts.shape:
            raise ValueError("srcs and dsts must have matching shapes")
        n = self.topo.num_leaves
        if len(srcs) and (
            srcs.min() < 0 or srcs.max() >= n or dsts.min() < 0 or dsts.max() >= n
        ):
            raise KeyError(f"pair endpoints outside leaf range [0, {n})")
        # membership is always validated (self-pairs and absent pairs
        # raise exactly as RouteTable.lookup does); the columnar decode
        # itself never touches the row indices
        rows = self._rows_for(srcs, dsts)
        if self.meta.get("explicit_nca"):
            nca = np.asarray(self.arrays["nca"], dtype=np.int64)[rows]
        else:
            nca = self.topo.nca_level_array(srcs, dsts)
        return nca, self._decode_ports(srcs, dsts, nca, rows)

    def lookup(self, src: int, dst: int) -> "Route":
        """One pair's stored route, materialized as a :class:`Route`."""
        from ..core.route import Route

        nca, ports = self.batch_lookup(
            np.asarray([src], dtype=np.int64), np.asarray([dst], dtype=np.int64)
        )
        lvl = int(nca[0])
        return Route(int(src), int(dst), tuple(int(p) for p in ports[0, :lvl]))
