"""The persistent, versioned route-table artifact store.

A store is a directory of immutable entries, one per canonical
``(topology, algorithm, seed, faults)`` key (:class:`StoreKey`).  Each
entry is a subdirectory named by the key's content digest::

    <root>/
      ab12cd34ef567890/
        meta.json        # format descriptor + key (written last)
        col0.npy         # compact payload arrays, one .npy each
        col1.npy
      ...

Properties the serving layer leans on:

* **zero-copy open** — payload arrays load with
  ``np.load(..., mmap_mode="r")``, so opening a 2048-leaf entry maps
  pages lazily in milliseconds instead of materializing megabytes;
* **atomic publication** — writers build the entry in a hidden temp
  directory (``meta.json`` written last) and ``os.rename`` it into
  place, so a concurrent reader only ever sees complete entries; on a
  racing double-write the first rename wins and the loser discards its
  temp copy (entries are pure functions of their key, so either copy is
  correct);
* **read-only entries** — :meth:`ArtifactStore.open` returns mmap'd
  arrays opened read-only; what-if queries (fault repair) copy before
  writing, the stored artifact is never mutated;
* **versioning** — ``meta.json`` carries
  :data:`repro.store.compact.FORMAT_VERSION`; readers refuse entries
  written by an incompatible format instead of mis-decoding them.

The root directory resolves, in order: an explicit ``root`` argument,
the ``REPRO_STORE`` environment variable, then the per-user default
``~/.cache/repro-xgft/store`` (documented in ``docs/serving.md``).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time as _time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

import numpy as np

from ..obs import active as _obs_active
from ..obs import metrics as _metrics
from ..obs.logs import get_logger
from ..registry import canonical_spec
from ..topology.registry import resolve_topology
from .compact import FORMAT_VERSION, CompactRouteTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..core.route import RouteTable

__all__ = [
    "ArtifactStore",
    "EntryInfo",
    "GCReport",
    "StoreKey",
    "StoreFormatError",
    "default_store_root",
    "open_table",
    "store_table",
]

#: environment variable overriding the default store root
STORE_ENV = "REPRO_STORE"

_log = get_logger(__name__)


class StoreFormatError(RuntimeError):
    """An entry was written by an incompatible store/format version."""


def default_store_root() -> Path:
    """The store root convention: ``$REPRO_STORE`` or ``~/.cache/repro-xgft/store``."""
    env = os.environ.get(STORE_ENV)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro-xgft" / "store"


@dataclass(frozen=True)
class StoreKey:
    """The canonical identity of a stored route table.

    All four components are *canonical* spec strings — differently
    spelled but equivalent inputs (``"xgft:2;16,16;1,8"`` vs
    ``"XGFT(2;16,16;1,8)"``, parameter order in algorithm specs) map to
    one key, hence one entry.  Build via :meth:`make`, which
    canonicalizes; the raw constructor trusts its inputs.
    """

    topology: str
    algorithm: str
    seed: int
    faults: str = "none"

    @classmethod
    def make(
        cls,
        topology,
        algorithm: str,
        seed: int = 0,
        faults: str = "none",
    ) -> "StoreKey":
        """Canonicalize raw axis specs into a key.

        ``topology`` accepts any resolvable spelling or a live
        :class:`~repro.topology.XGFT`; ``algorithm`` must be a registry
        spec string — live instances have no canonical cross-process
        identity and are rejected (they are served from the in-memory
        cache only; see :class:`repro.api.RouteTableCache`).
        """
        if not isinstance(algorithm, str):
            raise TypeError(
                "a store key needs an algorithm *spec string*; a live "
                f"{type(algorithm).__name__} instance has no canonical "
                "identity outside this process"
            )
        from ..faults import parse_fault_spec

        return cls(
            topology=resolve_topology(topology).spec(),
            algorithm=canonical_spec(algorithm),
            seed=int(seed),
            faults=parse_fault_spec(str(faults)).canonical(),
        )

    def canonical(self) -> str:
        """The one-line canonical form (what the digest is taken over)."""
        return f"{self.topology}|{self.algorithm}@{self.seed}+{self.faults}"

    @property
    def digest(self) -> str:
        """Content-addressed entry directory name."""
        return hashlib.sha256(self.canonical().encode()).hexdigest()[:16]

    def to_dict(self) -> dict:
        return {
            "topology": self.topology,
            "algorithm": self.algorithm,
            "seed": self.seed,
            "faults": self.faults,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "StoreKey":
        return cls(d["topology"], d["algorithm"], int(d["seed"]), d.get("faults", "none"))


#: meta.json keys that belong to the store envelope, not the format
_ENVELOPE_KEYS = ("key", "repro_version")


class ArtifactStore:
    """A directory of immutable compact route-table entries.

    Safe for concurrent readers and concurrent writers across processes
    (module docstring); one instance is also safe to share across
    threads for reads.
    """

    def __init__(self, root: str | Path | None = None):
        self.root = Path(root).expanduser() if root is not None else default_store_root()

    @classmethod
    def ensure(cls, store: "ArtifactStore | str | Path | None") -> "ArtifactStore":
        """Coerce an ``ArtifactStore | path | None`` into a live store."""
        if isinstance(store, ArtifactStore):
            return store
        return cls(store)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def entry_dir(self, key: StoreKey) -> Path:
        return self.root / key.digest

    def contains(self, key: StoreKey) -> bool:
        """True iff a *complete* entry exists for the key."""
        return (self.entry_dir(key) / "meta.json").is_file()

    # ------------------------------------------------------------------
    # Write
    # ------------------------------------------------------------------
    def put(
        self,
        key: StoreKey,
        table: "RouteTable | CompactRouteTable",
        overwrite: bool = False,
    ) -> Path:
        """Persist a table under ``key`` (encoding it if still full-form).

        Returns the entry directory.  Existing entries are kept
        (``overwrite=False``) — an entry is a pure function of its key,
        so rewriting it is wasted work, not a conflict.
        """
        compact = table if isinstance(table, CompactRouteTable) else table.to_compact()
        final = self.entry_dir(key)
        if self.contains(key) and not overwrite:
            if _obs_active():
                _metrics.counter("store.put_skipped").inc()
            return final
        t0 = _time.perf_counter()
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.root / f".tmp-{key.digest}-{os.getpid()}-{id(compact):x}"
        tmp.mkdir()
        try:
            for name, array in compact.arrays.items():
                np.save(tmp / f"{name}.npy", np.ascontiguousarray(array))
            meta = compact.describe()
            meta["key"] = key.to_dict()
            from .. import __version__

            meta["repro_version"] = __version__
            # meta.json last: its presence marks the entry complete
            (tmp / "meta.json").write_text(json.dumps(meta, indent=1, sort_keys=True))
            if overwrite and final.exists():
                # replace via rename-aside so readers never see a partial
                aside = self.root / f".old-{key.digest}-{os.getpid()}"
                os.rename(final, aside)
                os.rename(tmp, final)
                shutil.rmtree(aside, ignore_errors=True)
            else:
                try:
                    os.rename(tmp, final)
                except OSError:
                    if not self.contains(key):  # pragma: no cover - real rename error
                        raise
                    # a concurrent writer won the publish race; either
                    # copy is correct, keep theirs
                    shutil.rmtree(tmp, ignore_errors=True)
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
        if _obs_active():
            _metrics.counter("store.puts").inc()
            _metrics.histogram("store.put_s").observe(_time.perf_counter() - t0)
            _log.debug("store put %s -> %s", key.canonical(), final)
        return final

    # ------------------------------------------------------------------
    # Read
    # ------------------------------------------------------------------
    def open(self, key: StoreKey) -> CompactRouteTable:
        """Open an entry zero-copy: payload arrays are read-only mmaps.

        Raises ``KeyError`` on a missing entry and
        :class:`StoreFormatError` on a format-version mismatch.
        """
        t0 = _time.perf_counter()
        entry = self.entry_dir(key)
        meta_path = entry / "meta.json"
        if not meta_path.is_file():
            raise KeyError(f"no store entry for {key.canonical()!r} under {self.root}")
        meta = json.loads(meta_path.read_text())
        version = meta.get("format_version")
        if version != FORMAT_VERSION:
            raise StoreFormatError(
                f"entry {key.digest} was written with format version "
                f"{version!r}; this build reads version {FORMAT_VERSION} "
                "(rebuild the entry or upgrade)"
            )
        topo = resolve_topology(meta["topology"])
        arrays = {
            p.stem: np.load(p, mmap_mode="r") for p in sorted(entry.glob("*.npy"))
        }
        fmt = {
            k: v
            for k, v in meta.items()
            if k
            not in (
                "format_version",
                "topology",
                "kind",
                "encoding",
                "num_routes",
                "num_leaves",
                "nbytes",
                *_ENVELOPE_KEYS,
            )
        }
        table = CompactRouteTable(
            topo, meta["kind"], meta["encoding"], meta["num_routes"], fmt, arrays
        )
        if _obs_active():
            _metrics.counter("store.opens").inc()
            _metrics.histogram("store.open_s").observe(_time.perf_counter() - t0)
            _log.debug("store open %s (%d routes)", key.canonical(), table.num_routes)
        return table

    def load(self, key: StoreKey) -> "RouteTable":
        """Open and fully decode an entry to a struct-of-arrays table."""
        return self.open(key).to_table()

    def meta(self, key: StoreKey) -> dict:
        """The raw ``meta.json`` document of an entry."""
        path = self.entry_dir(key) / "meta.json"
        if not path.is_file():
            raise KeyError(f"no store entry for {key.canonical()!r} under {self.root}")
        return json.loads(path.read_text())

    def keys(self) -> Iterator[StoreKey]:
        """Iterate the keys of all complete entries."""
        if not self.root.is_dir():
            return
        for meta_path in sorted(self.root.glob("*/meta.json")):
            try:
                yield StoreKey.from_dict(json.loads(meta_path.read_text())["key"])
            except (KeyError, ValueError, json.JSONDecodeError):  # pragma: no cover
                continue  # foreign or corrupt directory: not an entry

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------
    def entry_sizes(self) -> list[EntryInfo]:
        """Size and last-access stats of every complete entry.

        The access stamp is the newest ``st_atime`` across the entry's
        files — ``open`` mmaps the payload ``.npy`` files, so serving an
        entry refreshes it even on ``relatime`` mounts once a day.
        """
        out = []
        if not self.root.is_dir():
            return out
        for meta_path in sorted(self.root.glob("*/meta.json")):
            entry = meta_path.parent
            nbytes = 0
            atime = 0.0
            for f in sorted(entry.iterdir()):
                try:
                    st = f.stat()
                except OSError:  # pragma: no cover - racing writer/GC
                    continue
                nbytes += st.st_size
                atime = max(atime, st.st_atime)
            out.append(EntryInfo(entry.name, nbytes, atime))
        return out

    def gc(self, max_bytes: int, dry_run: bool = False) -> "GCReport":
        """Evict least-recently-used entries until the store fits.

        Entries are removed oldest-access-first until the summed entry
        size is at most ``max_bytes``.  With ``dry_run=True`` nothing is
        deleted; the report lists what *would* go.  Hidden temp/aside
        directories of in-flight writers are never touched, and eviction
        is rename-aside-then-delete so concurrent readers either see a
        complete entry or a clean miss.
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        entries = self.entry_sizes()
        total = sum(e.nbytes for e in entries)
        evicted: list[EntryInfo] = []
        excess = total - max_bytes
        for info in sorted(entries, key=lambda e: (e.atime, e.digest)):
            if excess <= 0:
                break
            evicted.append(info)
            excess -= info.nbytes
            if dry_run:
                continue
            entry = self.root / info.digest
            aside = self.root / f".gc-{info.digest}-{os.getpid()}"
            try:
                os.rename(entry, aside)
            except OSError:  # pragma: no cover - concurrent GC won
                continue
            shutil.rmtree(aside, ignore_errors=True)
        reclaimed = sum(e.nbytes for e in evicted)
        if _obs_active() and not dry_run and evicted:
            _metrics.counter("store.gc_evictions").inc(len(evicted))
            _log.info(
                "store gc evicted %d entries (%d bytes) from %s",
                len(evicted),
                reclaimed,
                self.root,
            )
        return GCReport(
            scanned=len(entries),
            total_bytes=total,
            evicted=tuple(evicted),
            reclaimed_bytes=reclaimed,
            dry_run=dry_run,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactStore({str(self.root)!r})"


@dataclass(frozen=True)
class EntryInfo:
    """One complete entry as the garbage collector sees it."""

    digest: str
    nbytes: int
    atime: float


@dataclass(frozen=True)
class GCReport:
    """What :meth:`ArtifactStore.gc` scanned, kept and evicted."""

    scanned: int
    total_bytes: int
    evicted: tuple[EntryInfo, ...]
    reclaimed_bytes: int
    dry_run: bool

    @property
    def kept_bytes(self) -> int:
        return self.total_bytes - self.reclaimed_bytes


# ----------------------------------------------------------------------
# Facade helpers (re-exported through repro.api)
# ----------------------------------------------------------------------
def store_table(
    table: "RouteTable | CompactRouteTable",
    algorithm: str,
    seed: int = 0,
    faults: str = "none",
    store: ArtifactStore | str | Path | None = None,
) -> StoreKey:
    """Persist an existing table under its canonical key; returns the key."""
    live = ArtifactStore.ensure(store)
    key = StoreKey.make(table.topo, algorithm, seed, faults)
    live.put(key, table)
    return key


def open_table(
    topology,
    algorithm: str,
    seed: int = 0,
    faults: str = "none",
    store: ArtifactStore | str | Path | None = None,
    build: bool = True,
) -> CompactRouteTable:
    """Open the all-pairs table for a spec from the store, building on miss.

    The one-call serving entry point::

        from repro.api import open_table

        table = open_table("XGFT(2;32,64;1,16)", "d-mod-k", store="./store")
        nca, ports = table.batch_lookup(srcs, dsts)

    On a miss (and ``build=True``) the table is computed, persisted and
    reopened *from the store* (mmap-backed).  A non-``none`` ``faults``
    key stores the locally *repaired* table over the realized degraded
    fabric — disconnected pairs are absent from the entry.  Only
    oblivious registry schemes can be built (pattern-aware schemes have
    no pattern-independent all-pairs artifact).
    """
    live = ArtifactStore.ensure(store)
    key = StoreKey.make(topology, algorithm, seed, faults)
    if live.contains(key):
        return live.open(key)
    if not build:
        raise KeyError(f"no store entry for {key.canonical()!r} under {live.root}")
    from ..core.factory import is_oblivious, make_algorithm

    topo = resolve_topology(key.topology)
    alg = make_algorithm(key.algorithm, topo, seed=key.seed)
    if not is_oblivious(alg):
        raise ValueError(
            f"{key.algorithm!r} is pattern-aware: it has no pattern-"
            "independent all-pairs table to store"
        )
    table = alg.all_pairs_table()
    if key.faults != "none":
        from ..faults import DegradedTopology, parse_fault_spec, repair_table

        spec = parse_fault_spec(key.faults)
        degraded = DegradedTopology(topo, spec.realize(topo, table=table))
        table = repair_table(table, degraded, seed=key.seed).table
    live.put(key, table)
    return live.open(key)
