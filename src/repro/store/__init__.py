"""Compact route-table format and the persistent artifact store.

Two halves:

* :mod:`repro.store.compact` — :class:`CompactRouteTable`, the
  XGFT-aware compressed struct-of-arrays route-table format (columnar
  per-endpoint collapse for destination/source-deterministic schemes,
  prefix dictionary for hashed schemes), bit-exact round-trip with
  :class:`repro.core.route.RouteTable`;
* :mod:`repro.store.artifact` — :class:`ArtifactStore`, the versioned
  on-disk store of compact tables keyed by canonical
  ``(topology, algorithm, seed, faults)`` specs, with mmap-backed
  zero-copy loads, plus the :func:`open_table`/:func:`store_table`
  facade that :mod:`repro.api` re-exports.
"""

from .artifact import (
    ArtifactStore,
    EntryInfo,
    GCReport,
    StoreFormatError,
    StoreKey,
    default_store_root,
    open_table,
    store_table,
)
from .compact import ENCODINGS, FORMAT_VERSION, CompactRouteTable

__all__ = [
    "ArtifactStore",
    "CompactRouteTable",
    "ENCODINGS",
    "EntryInfo",
    "FORMAT_VERSION",
    "GCReport",
    "StoreFormatError",
    "StoreKey",
    "default_store_root",
    "open_table",
    "store_table",
]
