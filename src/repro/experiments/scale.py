"""The fluid-engine scaling benchmark (``repro scale`` / ``BENCH_fluid.json``).

Times the registered fluid backends — the scalar ``fluid`` reference,
the vectorized ``fluid-vec`` default, and the incremental
``fluid-vec-inc`` — across two kinds of grid cell:

* *phase* cells: one contended bulk-synchronous phase of ``N``
  uniformly random flows over an XGFT, across a (topology ×
  flow-count × size-mode) grid — the historical BENCH_fluid shape;
* *dynamic* cells: a full open-loop arrival stream driven through
  :class:`repro.workloads.DynamicDriver` — the regime the incremental
  engine exists for, where per-event refill work (links/flows touched)
  rather than one batch fill dominates.

The committed ``BENCH_fluid.json`` at the repository root is the perf
trajectory the ROADMAP's "fast as the hardware allows" north star is
measured against; ``benchmarks/bench_fluid_scale.py`` runs a reduced
grid of the same harness under pytest, and CI regenerates that reduced
grid on every push (agreement-checked against the committed floors in
``benchmarks/baseline_fluid_smoke.json``, artifact uploaded).

Beyond wall time, every paired grid cell is an *equivalence check*: the
max-min allocation is unique, so any two engines must agree on the
simulated phase time to float precision, and paired dynamic cells must
produce the same flow-completion-time statistics to 1e-9
(:func:`check_agreement`).  The grid extends past the scalar engine's
feasibility horizon (``scalar_cap``) into vectorized-only territory —
the configurations the paper's evaluation could not reach.
"""

from __future__ import annotations

import json
import time
from contextlib import nullcontext
from pathlib import Path
from typing import Sequence

import numpy as np

from ..core.factory import make_algorithm
from ..obs import active as _obs_active
from ..obs.trace import TRACER
from ..patterns.generators import uniform_random_pairs
from ..sim.config import PAPER_CONFIG, NetworkConfig
from ..sim.engines import fluid_engine_names, make_fluid_simulator, resolve_engine
from ..sim.network import flow_incidence, xgft_link_space
from ..topology.registry import resolve_topology

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "PRESETS",
    "check_agreement",
    "check_floors",
    "format_scale_results",
    "load_bench",
    "load_floors",
    "run_scale",
    "scale_workload",
    "write_bench",
]

#: version stamp of the BENCH_fluid.json layout.  v2 added dynamic
#: (open-loop driver) rows, generalized engine pairing in ``speedups``,
#: and the ``dynamic_pairs`` FCT-agreement section.
BENCH_SCHEMA_VERSION = 2

#: the two workload shapes: ``uniform`` message sizes are the sweep
#: production case (a pattern phase sends equal-size messages, so flows
#: complete in large batches — few recomputes); ``mixed`` sizes make
#: every completion distinct — the recompute-per-event worst case
SIZE_MODES = ("uniform", "mixed")

#: named grids: ``smoke`` is the CI job (seconds); ``full`` is the
#: committed ``BENCH_fluid.json`` trajectory (minutes — the scalar rows
#: at 10k+ flows dominate, which is exactly the point).  A case with a
#: ``workload`` key is a *dynamic* cell (open-loop arrival stream
#: through the driver; ``engines`` pins which backends run it);
#: otherwise it is a (topology x flow-count x size-mode) phase block.
#: ``scalar_caps`` bounds the flow count the scalar engine is asked to
#: run per size mode (its per-completion recompute makes mixed sizes
#: brutally slower).
PRESETS: dict[str, dict] = {
    "smoke": {
        "cases": (
            {
                "topology": "XGFT(2;8,8;1,4)",
                "flows": (200, 1000),
                "sizes": ("uniform", "mixed"),
            },
            {
                # dynamic agreement cell: mixed-analogue sizes so every
                # completion is distinct, locality bias so the
                # incremental engine's component refills stay local
                "topology": "XGFT(2;8,8;1,4)",
                "workload": (
                    "poisson(load=0.7,sizes=uniform,spread=0.5,"
                    "flows=600,locality=0.9,group=8)"
                ),
                "engines": ("fluid-vec", "fluid-vec-inc"),
            },
        ),
        "scalar_caps": {"uniform": 1000, "mixed": 1000},
        "repeats": 1,
    },
    "full": {
        "cases": (
            {
                # the paper's 256-leaf machine, moderately slimmed
                "topology": "XGFT(2;16,16;1,8)",
                "flows": (1000, 4000, 10000),
                "sizes": ("uniform", "mixed"),
            },
            {
                # a 512-leaf three-level tree: longer paths, more links
                "topology": "XGFT(3;8,8,8;1,4,4)",
                "flows": (10000, 20000),
                "sizes": ("uniform",),
            },
            {
                # an order of magnitude beyond the paper: 2048 leaves,
                # vectorized-only territory
                "topology": "XGFT(2;32,64;1,16)",
                "flows": (50000,),
                "sizes": ("uniform",),
            },
            {
                # dynamic FCT-agreement pair on the three-level tree:
                # incremental vs from-scratch over a full Poisson
                # stream, gated at 1e-9 by check_agreement
                "topology": "XGFT(3;8,8,8;1,4,4)",
                "workload": "poisson(load=0.7,flows=4000)",
                "engines": ("fluid-vec", "fluid-vec-inc"),
            },
            {
                # the mixed-sizes dynamic worst case (every completion
                # distinct -> one refill per event): the cell where the
                # incremental engine must win wall clock
                "topology": "XGFT(2;16,16;1,8)",
                "workload": (
                    "poisson(load=0.7,sizes=uniform,spread=0.5,"
                    "flows=10000,locality=0.9,group=16)"
                ),
                "engines": ("fluid-vec", "fluid-vec-inc"),
            },
            {
                # the headline scale row: >=50k concurrent flows on a
                # 2048-leaf fabric, incremental-only (a from-scratch
                # refill per event is off the table at this scale —
                # that is the point).  load=3.0 is a burst regime: the
                # arrival wave outruns the drain, stacking the active
                # set to ~0.96 x flows; locality=1.0 confines every
                # bottleneck component to one 32-leaf sub-tree (the
                # incremental win is a locality property of the
                # traffic — docs/performance.md documents how symmetric
                # cross-traffic degenerates)
                "topology": "XGFT(2;32,64;1,16)",
                "workload": (
                    "poisson(load=3.0,sizes=uniform,spread=0.5,"
                    "flows=60000,locality=1.0,group=32)"
                ),
                "engines": ("fluid-vec-inc",),
            },
        ),
        "scalar_caps": {"uniform": 20000, "mixed": 10000},
        "repeats": 1,
    },
}


def scale_workload(topo, num_flows: int, seed: int = 0, sizes: str = "uniform"):
    """One contended phase: ``num_flows`` random flows.

    Pairs are uniformly random (src != dst, repeats allowed — multiple
    concurrent flows per pair model multi-message phases), routed by
    d-mod-k (deterministic, so the workload is identical for every
    engine and machine).  ``sizes="uniform"`` sends the segment-aligned
    64 KB base everywhere (flows complete in rate-class batches, like a
    real pattern phase); ``sizes="mixed"`` spreads sizes ±50% so every
    completion is a distinct event — the recompute-heavy worst case.
    """
    if sizes not in SIZE_MODES:
        raise ValueError(f"unknown size mode {sizes!r}; known: {', '.join(SIZE_MODES)}")
    rng = np.random.default_rng(seed)
    pairs = uniform_random_pairs(topo.num_leaves, num_flows, rng)
    table = make_algorithm("d-mod-k", topo).build_table(pairs)
    base = 64 * 1024.0
    if sizes == "uniform":
        flow_sizes = np.full(num_flows, base)
    else:
        flow_sizes = base * (1.0 + 0.5 * (2.0 * rng.random(num_flows) - 1.0))
    return table, flow_sizes


def _time_engine(
    engine: str,
    table,
    sizes: np.ndarray,
    config: NetworkConfig,
    repeats: int,
) -> dict:
    """Best-of-``repeats`` wall time of one engine on one phase."""
    space = xgft_link_space(table.topo)
    coo_flow, coo_link = flow_incidence(table, space)
    ids = np.arange(len(table), dtype=np.int64)
    best = float("inf")
    sim_time = recomputes = None
    telemetry: dict = {}
    for _ in range(repeats):
        sim = make_fluid_simulator(engine, space.num_links, config.link_bandwidth)
        t0 = time.perf_counter()
        sim.add_flows(ids, sizes, coo_flow, coo_link)
        duration = sim.run_until_idle()
        wall = time.perf_counter() - t0
        if wall < best:
            best = wall
        # a third-party registration may expose neither counter; None
        # (not 0) records "not instrumented" — the formatter renders '-'
        sim_time = duration
        recomputes = getattr(sim, "recomputes", None)
        telemetry = sim.telemetry() if hasattr(sim, "telemetry") else {}
    return {
        "engine": engine,
        "wall_s": round(best, 6),
        "sim_time": sim_time,
        "recomputes": recomputes,
        "nnz": int(len(coo_flow)),
        **({"telemetry": telemetry} if telemetry else {}),
    }


def _time_dynamic(
    engine: str,
    topo,
    workload: str,
    seed: int,
    config: NetworkConfig,
) -> dict:
    """One open-loop dynamic run of ``workload`` through ``engine``.

    The row carries the driver's FCT statistics (the agreement surface
    for paired dynamic cells), the engine telemetry dict, and — when
    the engine reports refill work — ``refill_work_reduction``: the
    full-refill-equivalent link work divided by the link work actually
    done (``links_active / links_touched``), the headline incremental
    win.
    """
    from ..workloads import DynamicDriver, resolve_workload

    wl = resolve_workload(workload, topo.num_leaves)
    algo = make_algorithm("d-mod-k", topo)
    driver = DynamicDriver(topo, algo, engine=engine, config=config)
    stream = wl.generate(seed)
    res = driver.run(stream, workload=wl.spec, seed=seed)
    tel = dict(res.stats.engine) if res.stats is not None else {}
    row = {
        "engine": engine,
        "dynamic": True,
        "workload": wl.spec,
        "flows": res.num_arrivals,
        "completed": res.num_completed,
        "wall_s": round(res.wall_time_s, 6),
        "sim_time": res.makespan,
        "recomputes": res.stats.recomputes if res.stats is not None else None,
        "events": res.stats.events if res.stats is not None else None,
        "fct_mean": res.fct.mean,
        "fct_p99": res.fct.p99,
        "makespan": res.makespan,
        **({"telemetry": tel} if tel else {}),
    }
    links_touched = tel.get("links_touched")
    links_active = tel.get("links_active")
    if links_touched and links_active is not None:
        row["refill_work_reduction"] = round(links_active / links_touched, 3)
    return row


def run_scale(
    topologies: Sequence[str] | None = None,
    flow_counts: Sequence[int] | None = None,
    size_modes: Sequence[str] | None = None,
    engines: Sequence[str] | None = None,
    preset: str = "smoke",
    scalar_cap: int | None = None,
    repeats: int | None = None,
    seed: int = 0,
    config: NetworkConfig = PAPER_CONFIG,
) -> dict:
    """Run the scaling grid and return the BENCH_fluid document.

    With no explicit axes the chosen preset's case list runs; passing
    any of ``topologies`` / ``flow_counts`` / ``size_modes`` replaces
    the case list with the single custom (topologies × flows × sizes)
    phase block, filling unspecified axes from the preset's first case
    (dynamic preset cells do not run under custom axes).
    ``scalar_cap`` bounds the flow count the scalar engine is asked to
    run in *every* size mode (its progressive-filling loop is O(links ×
    flows) per bottleneck round, re-run after every completion — past
    the cap only the vectorized engines run, and the row records why).
    """
    if preset not in PRESETS:
        raise ValueError(f"unknown preset {preset!r}; known: {', '.join(PRESETS)}")
    chosen = PRESETS[preset]
    first = chosen["cases"][0]
    if topologies or flow_counts or size_modes:
        cases = tuple(
            {
                "topology": t,
                "flows": tuple(flow_counts) if flow_counts else first["flows"],
                "sizes": tuple(size_modes) if size_modes else first["sizes"],
            }
            for t in (tuple(topologies) if topologies else (first["topology"],))
        )
    else:
        cases = tuple(chosen["cases"])
    scalar_caps = (
        {mode: scalar_cap for mode in SIZE_MODES}
        if scalar_cap is not None
        else dict(chosen["scalar_caps"])
    )
    repeats = repeats if repeats is not None else chosen["repeats"]
    engines = tuple(engines) if engines else fluid_engine_names()
    for name in engines:
        if resolve_engine(name).kind != "fluid":
            raise ValueError(f"engine {name!r} is not a fluid backend")

    rows: list[dict] = []
    trace = _obs_active()
    for case in cases:
        topo = resolve_topology(case["topology"])
        space = xgft_link_space(topo)
        base_ids = {
            "topology": case["topology"],
            "num_leaves": topo.num_leaves,
            "num_links": space.num_links,
        }
        if "workload" in case:
            # a dynamic cell: the case pins its engine list (an explicit
            # --engines selection intersects it, so `--engines fluid`
            # never drags the scalar engine through a 100k-event stream)
            case_engines = tuple(
                e for e in case.get("engines", engines) if e in engines
            )
            for engine in case_engines:
                with (
                    TRACER.span("scale.dynamic", engine=engine)
                    if trace
                    else nullcontext()
                ):
                    row = _time_dynamic(engine, topo, case["workload"], seed, config)
                rows.append(base_ids | row)
            continue
        for num_flows in case["flows"]:
            for mode in case["sizes"]:
                # a handful of spans per grid cell (noops unless tracing)
                with (
                    TRACER.span("scale.workload", flows=num_flows, sizes=mode)
                    if trace
                    else nullcontext()
                ):
                    table, sizes = scale_workload(
                        topo, num_flows, seed=seed, sizes=mode
                    )
                for engine in engines:
                    base = base_ids | {"flows": num_flows, "sizes": mode}
                    cap = scalar_caps.get(mode, 0)
                    if engine == "fluid" and num_flows > cap:
                        rows.append(
                            base
                            | {
                                "engine": engine,
                                "skipped": f"beyond the {mode} scalar cap ({cap} flows)",
                            }
                        )
                        continue
                    with (
                        TRACER.span(
                            "scale.row", engine=engine, flows=num_flows, sizes=mode
                        )
                        if trace
                        else nullcontext()
                    ):
                        row = _time_engine(engine, table, sizes, config, repeats)
                    rows.append(base | row)

    return {
        "kind": "repro-fluid-scale-bench",
        "schema_version": BENCH_SCHEMA_VERSION,
        "preset": preset,
        "seed": seed,
        "repeats": repeats,
        "scalar_caps": scalar_caps,
        "engines": list(engines),
        "environment": _environment(),
        "rows": rows,
        "speedups": _speedups(rows),
        "dynamic_pairs": _dynamic_pairs(rows),
    }


def _environment() -> dict:
    from .sweep import _environment as sweep_environment

    return sweep_environment()


def _reference_engine(by_engine: dict[str, dict]) -> str | None:
    """The baseline of a cell: the scalar reference when it ran, else
    the vectorized default — everything else is timed *against* it."""
    for name in ("fluid", "fluid-vec"):
        if name in by_engine:
            return name
    return None


def _speedups(rows: Sequence[dict]) -> list[dict]:
    """Per-cell engine pairing against the cell's reference engine.

    Every phase row that shares a (topology, flows, sizes) cell with
    the reference engine (``fluid`` when it ran, else ``fluid-vec``)
    gets a pair row: wall-time speedup plus the simulated-phase-time
    relative difference the agreement gate checks.
    """
    cells: dict[tuple, dict[str, dict]] = {}
    for row in rows:
        if "wall_s" in row and not row.get("dynamic"):
            key = (row["topology"], row["flows"], row["sizes"])
            cells.setdefault(key, {})[row["engine"]] = row
    out = []
    for (topo_spec, flows, mode), by_engine in cells.items():
        ref_name = _reference_engine(by_engine)
        if ref_name is None:
            continue
        ref = by_engine[ref_name]
        for name, row in by_engine.items():
            if name == ref_name:
                continue
            pair = max(abs(ref["sim_time"]), abs(row["sim_time"]))
            out.append(
                {
                    "topology": topo_spec,
                    "flows": flows,
                    "sizes": mode,
                    "baseline": ref_name,
                    "engine": name,
                    "baseline_wall_s": ref["wall_s"],
                    "wall_s": row["wall_s"],
                    "speedup": round(ref["wall_s"] / row["wall_s"], 3),
                    "sim_time_rel_diff": (
                        abs(ref["sim_time"] - row["sim_time"]) / pair if pair else 0.0
                    ),
                }
            )
    return out


def _dynamic_pairs(rows: Sequence[dict]) -> list[dict]:
    """FCT-agreement pairing of dynamic cells sharing an engine pair.

    ``fct_rel_diff`` is the worst relative difference across the FCT
    mean, FCT p99 and makespan; a completed-count mismatch is an
    immediate infinite divergence (the engines did not even agree on
    *which* flows finished).
    """
    cells: dict[tuple, dict[str, dict]] = {}
    for row in rows:
        if row.get("dynamic") and "wall_s" in row:
            key = (row["topology"], row["workload"])
            cells.setdefault(key, {})[row["engine"]] = row
    out = []
    for (topo_spec, workload), by_engine in cells.items():
        ref_name = _reference_engine(by_engine)
        if ref_name is None:
            continue
        ref = by_engine[ref_name]
        for name, row in by_engine.items():
            if name == ref_name:
                continue
            if row["completed"] != ref["completed"]:
                rel = float("inf")
            else:
                rel = 0.0
                for key in ("fct_mean", "fct_p99", "makespan"):
                    denom = max(abs(ref[key]), abs(row[key]))
                    if denom:
                        rel = max(rel, abs(ref[key] - row[key]) / denom)
            out.append(
                {
                    "topology": topo_spec,
                    "workload": workload,
                    "baseline": ref_name,
                    "engine": name,
                    "baseline_wall_s": ref["wall_s"],
                    "wall_s": row["wall_s"],
                    "speedup": round(ref["wall_s"] / row["wall_s"], 3),
                    "fct_rel_diff": rel,
                }
            )
    return out


def check_agreement(
    data: dict, rel_tol: float = 1e-6, fct_rel_tol: float = 1e-9
) -> list[str]:
    """Engine disagreements beyond tolerance, across both cell kinds.

    The max-min allocation is unique, so any real divergence is an
    engine bug, not noise; an empty list means every paired grid cell
    agrees.  Phase pairs compare the simulated phase time at
    ``rel_tol``; dynamic pairs compare FCT statistics (mean, p99,
    makespan) at the much tighter ``fct_rel_tol`` — the incremental
    engine's exactness contract.  A document with *zero* paired cells
    (e.g. a vec-only run where every scalar row fell past the cap) is
    itself a problem: a check that compared nothing must not
    green-light the run.
    """
    if not data.get("speedups") and not data.get("dynamic_pairs"):
        return [
            "no engine row pair ran — the agreement check verified "
            "nothing; raise the scalar cap or lower the flow counts so "
            "two engines share at least one grid cell"
        ]
    problems = []
    for pair in data.get("speedups", ()):
        if pair["sim_time_rel_diff"] > rel_tol:
            problems.append(
                f"{pair['topology']} @ {pair['flows']} {pair['sizes']} flows: "
                f"{pair.get('baseline', 'fluid')} and {pair.get('engine', 'fluid-vec')} "
                f"sim times differ by "
                f"{pair['sim_time_rel_diff']:.3g} (tolerance {rel_tol:g})"
            )
    for pair in data.get("dynamic_pairs", ()):
        if pair["fct_rel_diff"] > fct_rel_tol:
            problems.append(
                f"{pair['topology']} @ {pair['workload']}: "
                f"{pair['baseline']} and {pair['engine']} FCT statistics "
                f"differ by {pair['fct_rel_diff']:.3g} "
                f"(tolerance {fct_rel_tol:g})"
            )
    return problems


def _lookup(row: dict, dotted: str):
    """Resolve ``a.b.c`` through nested dicts (None when absent)."""
    node = row
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def check_floors(data: dict, floors: dict) -> list[str]:
    """Violations of a committed floors document (the CI perf/telemetry gate).

    ``floors`` is a ``repro-fluid-scale-floors`` JSON document::

        {"kind": "repro-fluid-scale-floors",
         "floors": [
           {"match": {"engine": "fluid-vec-inc", "dynamic": true},
            "min": {"telemetry.partial_refills": 50,
                    "refill_work_reduction": 2.0}}]}

    Every ``floors`` entry must match at least one bench row (all
    ``match`` keys equal), and every matched row must carry each
    dotted-path ``min`` field at or above its floor.  Floors gate
    *presence and magnitude* of the new telemetry — a refactor that
    silently drops ``partial_refills`` from the row fails the gate, not
    just one that regresses its value.
    """
    if floors.get("kind") != "repro-fluid-scale-floors":
        raise ValueError("not a fluid scale floors document")
    problems = []
    for entry in floors.get("floors", ()):
        match = entry.get("match", {})
        matched = [
            row
            for row in data.get("rows", ())
            if all(row.get(k) == v for k, v in match.items())
        ]
        if not matched:
            problems.append(f"no bench row matches floor selector {match}")
            continue
        for row in matched:
            label = (
                f"{row.get('topology')} {row.get('engine')} "
                f"{'dynamic' if row.get('dynamic') else row.get('sizes')}"
            )
            for dotted, floor in entry.get("min", {}).items():
                value = _lookup(row, dotted)
                if value is None:
                    problems.append(f"{label}: field {dotted!r} missing from row")
                elif value < floor:
                    problems.append(
                        f"{label}: {dotted} = {value:g} below floor {floor:g}"
                    )
    return problems


def _fmt(value, spec: str) -> str:
    """Format ``value``, rendering None (uninstrumented) as ``-``."""
    return "-" if value is None else format(value, spec)


def format_scale_results(data: dict) -> str:
    """Plain-text rendering of a BENCH_fluid document."""
    lines = [
        f"fluid-engine scaling (preset={data['preset']}, seed={data['seed']}, "
        f"repeats={data['repeats']})",
        "",
        f"{'topology':<22} {'flows':>7} {'sizes':<8} {'engine':<13} {'wall [s]':>10} "
        f"{'recomputes':>10} {'sim time [s]':>13}",
        "-" * 89,
    ]
    dynamic_rows = []
    for row in data["rows"]:
        if row.get("dynamic"):
            dynamic_rows.append(row)
        elif "skipped" in row:
            lines.append(
                f"{row['topology']:<22} {row['flows']:>7} {row['sizes']:<8} "
                f"{row['engine']:<13} {'—':>10} {'—':>10}   skipped: {row['skipped']}"
            )
        else:
            lines.append(
                f"{row['topology']:<22} {row['flows']:>7} {row['sizes']:<8} "
                f"{row['engine']:<13} {_fmt(row['wall_s'], '>10.4f')} "
                f"{_fmt(row['recomputes'], '>10')} "
                f"{_fmt(row['sim_time'], '>13.6g')}"
            )
    if dynamic_rows:
        lines += [
            "",
            "dynamic (open-loop driver) cells:",
            f"{'topology':<22} {'flows':>7} {'engine':<13} {'wall [s]':>10} "
            f"{'recomputes':>10} {'fct mean [s]':>13} {'work redux':>10}",
            "-" * 92,
        ]
        for row in dynamic_rows:
            redux = row.get("refill_work_reduction")
            redux_s = f"{redux:>9.1f}x" if redux is not None else f"{'-':>10}"
            lines.append(
                f"{row['topology']:<22} {row['flows']:>7} "
                f"{row['engine']:<13} {_fmt(row['wall_s'], '>10.4f')} "
                f"{_fmt(row['recomputes'], '>10')} "
                f"{_fmt(row['fct_mean'], '>13.6g')} {redux_s}"
            )
            lines.append(f"{'':<31} workload: {row['workload']}")
    if data["speedups"]:
        lines += [
            "",
            f"{'topology':<22} {'flows':>7} {'sizes':<8} {'engine':<13} "
            f"{'speedup':>9} {'rel diff':>10}",
            "-" * 74,
        ]
        for pair in data["speedups"]:
            lines.append(
                f"{pair['topology']:<22} {pair['flows']:>7} {pair['sizes']:<8} "
                f"{pair['engine']:<13} {pair['speedup']:>8.1f}x "
                f"{pair['sim_time_rel_diff']:>10.2e}"
            )
    if data.get("dynamic_pairs"):
        lines += [
            "",
            f"{'topology':<22} {'engine':<13} {'speedup':>9} {'fct rel diff':>13}",
            "-" * 60,
        ]
        for pair in data["dynamic_pairs"]:
            lines.append(
                f"{pair['topology']:<22} {pair['engine']:<13} "
                f"{pair['speedup']:>8.1f}x {pair['fct_rel_diff']:>13.2e}"
            )
    return "\n".join(lines)


def write_bench(data: dict, path: str | Path) -> Path:
    """Serialize a BENCH_fluid document (deterministic layout).

    The ``environment.repro`` version is (re)stamped from the live
    source package *at write time*: the historical bug was a bench
    regenerated in a new tree carrying the version of a stale installed
    distribution — the committed artifact must record the tree that
    produced it.
    """
    from .. import __version__

    path = Path(path)
    data = dict(data)
    data["environment"] = dict(data.get("environment", {})) | {"repro": __version__}
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


def load_bench(path: str | Path) -> dict:
    """Load and schema-check a BENCH_fluid document."""
    data = json.loads(Path(path).read_text())
    if data.get("kind") != "repro-fluid-scale-bench":
        raise ValueError(f"{path}: not a fluid scale bench document")
    if data.get("schema_version") != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: bench schema v{data.get('schema_version')} != "
            f"supported v{BENCH_SCHEMA_VERSION}"
        )
    return data


def load_floors(path: str | Path) -> dict:
    """Load and kind-check a floors document (see :func:`check_floors`)."""
    floors = json.loads(Path(path).read_text())
    if floors.get("kind") != "repro-fluid-scale-floors":
        raise ValueError(f"{path}: not a fluid scale floors document")
    return floors
