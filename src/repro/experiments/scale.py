"""The fluid-engine scaling benchmark (``repro scale`` / ``BENCH_fluid.json``).

Times the registered fluid backends — the scalar ``fluid`` reference
and the vectorized ``fluid-vec`` default — on one contended
bulk-synchronous phase of ``N`` uniformly random flows over an XGFT,
across a (topology × flow-count) grid.  The committed
``BENCH_fluid.json`` at the repository root is the perf trajectory the
ROADMAP's "fast as the hardware allows" north star is measured against;
``benchmarks/bench_fluid_scale.py`` runs a reduced grid of the same
harness under pytest, and CI regenerates that reduced grid on every
push (agreement-checked, artifact uploaded).

Beyond wall time, every scalar/vectorized row pair is an *equivalence
check*: the max-min allocation is unique, so the two engines must
agree on the simulated phase time to float precision
(:func:`check_agreement`), and the grid extends past the scalar
engine's feasibility horizon (``scalar_cap``) into vectorized-only
territory — the configurations the paper's evaluation could not reach.
"""

from __future__ import annotations

import json
import time
from contextlib import nullcontext
from pathlib import Path
from typing import Sequence

import numpy as np

from ..core.factory import make_algorithm
from ..obs import active as _obs_active
from ..obs.trace import TRACER
from ..patterns.generators import uniform_random_pairs
from ..sim.config import PAPER_CONFIG, NetworkConfig
from ..sim.engines import fluid_engine_names, make_fluid_simulator, resolve_engine
from ..sim.network import flow_incidence, xgft_link_space
from ..topology.registry import resolve_topology

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "PRESETS",
    "check_agreement",
    "format_scale_results",
    "load_bench",
    "run_scale",
    "scale_workload",
    "write_bench",
]

#: version stamp of the BENCH_fluid.json layout
BENCH_SCHEMA_VERSION = 1

#: the two workload shapes: ``uniform`` message sizes are the sweep
#: production case (a pattern phase sends equal-size messages, so flows
#: complete in large batches — few recomputes); ``mixed`` sizes make
#: every completion distinct — the recompute-per-event worst case
SIZE_MODES = ("uniform", "mixed")

#: named grids: ``smoke`` is the CI job (seconds); ``full`` is the
#: committed ``BENCH_fluid.json`` trajectory (minutes — the scalar rows
#: at 10k+ flows dominate, which is exactly the point).  Each case is a
#: (topology x flow-count x size-mode) block; ``scalar_caps`` bounds the
#: flow count the scalar engine is asked to run per size mode (its
#: per-completion recompute makes mixed sizes brutally slower).
PRESETS: dict[str, dict] = {
    "smoke": {
        "cases": (
            {
                "topology": "XGFT(2;8,8;1,4)",
                "flows": (200, 1000),
                "sizes": ("uniform", "mixed"),
            },
        ),
        "scalar_caps": {"uniform": 1000, "mixed": 1000},
        "repeats": 1,
    },
    "full": {
        "cases": (
            {
                # the paper's 256-leaf machine, moderately slimmed
                "topology": "XGFT(2;16,16;1,8)",
                "flows": (1000, 4000, 10000),
                "sizes": ("uniform", "mixed"),
            },
            {
                # a 512-leaf three-level tree: longer paths, more links
                "topology": "XGFT(3;8,8,8;1,4,4)",
                "flows": (10000, 20000),
                "sizes": ("uniform",),
            },
            {
                # an order of magnitude beyond the paper: 2048 leaves,
                # vectorized-only territory
                "topology": "XGFT(2;32,64;1,16)",
                "flows": (50000,),
                "sizes": ("uniform",),
            },
        ),
        "scalar_caps": {"uniform": 20000, "mixed": 10000},
        "repeats": 1,
    },
}


def scale_workload(topo, num_flows: int, seed: int = 0, sizes: str = "uniform"):
    """One contended phase: ``num_flows`` random flows.

    Pairs are uniformly random (src != dst, repeats allowed — multiple
    concurrent flows per pair model multi-message phases), routed by
    d-mod-k (deterministic, so the workload is identical for every
    engine and machine).  ``sizes="uniform"`` sends the segment-aligned
    64 KB base everywhere (flows complete in rate-class batches, like a
    real pattern phase); ``sizes="mixed"`` spreads sizes ±50% so every
    completion is a distinct event — the recompute-heavy worst case.
    """
    if sizes not in SIZE_MODES:
        raise ValueError(f"unknown size mode {sizes!r}; known: {', '.join(SIZE_MODES)}")
    rng = np.random.default_rng(seed)
    pairs = uniform_random_pairs(topo.num_leaves, num_flows, rng)
    table = make_algorithm("d-mod-k", topo).build_table(pairs)
    base = 64 * 1024.0
    if sizes == "uniform":
        flow_sizes = np.full(num_flows, base)
    else:
        flow_sizes = base * (1.0 + 0.5 * (2.0 * rng.random(num_flows) - 1.0))
    return table, flow_sizes


def _time_engine(
    engine: str,
    table,
    sizes: np.ndarray,
    config: NetworkConfig,
    repeats: int,
) -> dict:
    """Best-of-``repeats`` wall time of one engine on one phase."""
    space = xgft_link_space(table.topo)
    coo_flow, coo_link = flow_incidence(table, space)
    ids = np.arange(len(table), dtype=np.int64)
    best = float("inf")
    sim_time = recomputes = None
    telemetry: dict = {}
    for _ in range(repeats):
        sim = make_fluid_simulator(engine, space.num_links, config.link_bandwidth)
        t0 = time.perf_counter()
        sim.add_flows(ids, sizes, coo_flow, coo_link)
        duration = sim.run_until_idle()
        wall = time.perf_counter() - t0
        if wall < best:
            best = wall
        sim_time, recomputes = duration, sim.recomputes
        # full fill telemetry when the engine exposes it (third-party
        # engine registrations may not)
        telemetry = sim.telemetry() if hasattr(sim, "telemetry") else {}
    return {
        "engine": engine,
        "wall_s": round(best, 6),
        "sim_time": sim_time,
        "recomputes": recomputes,
        "nnz": int(len(coo_flow)),
        **({"telemetry": telemetry} if telemetry else {}),
    }


def run_scale(
    topologies: Sequence[str] | None = None,
    flow_counts: Sequence[int] | None = None,
    size_modes: Sequence[str] | None = None,
    engines: Sequence[str] | None = None,
    preset: str = "smoke",
    scalar_cap: int | None = None,
    repeats: int | None = None,
    seed: int = 0,
    config: NetworkConfig = PAPER_CONFIG,
) -> dict:
    """Run the scaling grid and return the BENCH_fluid document.

    With no explicit axes the chosen preset's case list runs; passing
    any of ``topologies`` / ``flow_counts`` / ``size_modes`` replaces
    the case list with the single custom (topologies × flows × sizes)
    block, filling unspecified axes from the preset's first case.
    ``scalar_cap`` bounds the flow count the scalar engine is asked to
    run in *every* size mode (its progressive-filling loop is O(links ×
    flows) per bottleneck round, re-run after every completion — past
    the cap only the vectorized engines run, and the row records why).
    """
    if preset not in PRESETS:
        raise ValueError(f"unknown preset {preset!r}; known: {', '.join(PRESETS)}")
    chosen = PRESETS[preset]
    first = chosen["cases"][0]
    if topologies or flow_counts or size_modes:
        cases = tuple(
            {
                "topology": t,
                "flows": tuple(flow_counts) if flow_counts else first["flows"],
                "sizes": tuple(size_modes) if size_modes else first["sizes"],
            }
            for t in (tuple(topologies) if topologies else (first["topology"],))
        )
    else:
        cases = tuple(chosen["cases"])
    scalar_caps = (
        {mode: scalar_cap for mode in SIZE_MODES}
        if scalar_cap is not None
        else dict(chosen["scalar_caps"])
    )
    repeats = repeats if repeats is not None else chosen["repeats"]
    engines = tuple(engines) if engines else fluid_engine_names()
    for name in engines:
        if resolve_engine(name).kind != "fluid":
            raise ValueError(f"engine {name!r} is not a fluid backend")

    rows: list[dict] = []
    for case in cases:
        topo = resolve_topology(case["topology"])
        space = xgft_link_space(topo)
        for num_flows in case["flows"]:
            for mode in case["sizes"]:
                # a handful of spans per grid cell (noops unless tracing)
                trace = _obs_active()
                with (
                    TRACER.span("scale.workload", flows=num_flows, sizes=mode)
                    if trace
                    else nullcontext()
                ):
                    table, sizes = scale_workload(
                        topo, num_flows, seed=seed, sizes=mode
                    )
                for engine in engines:
                    base = {
                        "topology": case["topology"],
                        "num_leaves": topo.num_leaves,
                        "num_links": space.num_links,
                        "flows": num_flows,
                        "sizes": mode,
                    }
                    cap = scalar_caps.get(mode, 0)
                    if engine == "fluid" and num_flows > cap:
                        rows.append(
                            base
                            | {
                                "engine": engine,
                                "skipped": f"beyond the {mode} scalar cap ({cap} flows)",
                            }
                        )
                        continue
                    with (
                        TRACER.span(
                            "scale.row", engine=engine, flows=num_flows, sizes=mode
                        )
                        if trace
                        else nullcontext()
                    ):
                        row = _time_engine(engine, table, sizes, config, repeats)
                    rows.append(base | row)

    return {
        "kind": "repro-fluid-scale-bench",
        "schema_version": BENCH_SCHEMA_VERSION,
        "preset": preset,
        "seed": seed,
        "repeats": repeats,
        "scalar_caps": scalar_caps,
        "engines": list(engines),
        "environment": _environment(),
        "rows": rows,
        "speedups": _speedups(rows),
    }


def _environment() -> dict:
    from .sweep import _environment as sweep_environment

    return sweep_environment()


def _speedups(rows: Sequence[dict]) -> list[dict]:
    """Scalar-vs-vectorized pairing per (topology, flows, sizes) cell."""
    cells: dict[tuple, dict[str, dict]] = {}
    for row in rows:
        if "wall_s" in row:
            key = (row["topology"], row["flows"], row["sizes"])
            cells.setdefault(key, {})[row["engine"]] = row
    out = []
    for (topo_spec, flows, mode), by_engine in cells.items():
        scalar, vec = by_engine.get("fluid"), by_engine.get("fluid-vec")
        if not scalar or not vec:
            continue
        pair = max(abs(scalar["sim_time"]), abs(vec["sim_time"]))
        out.append(
            {
                "topology": topo_spec,
                "flows": flows,
                "sizes": mode,
                "scalar_wall_s": scalar["wall_s"],
                "vec_wall_s": vec["wall_s"],
                "speedup": round(scalar["wall_s"] / vec["wall_s"], 3),
                "sim_time_rel_diff": (
                    abs(scalar["sim_time"] - vec["sim_time"]) / pair if pair else 0.0
                ),
            }
        )
    return out


def check_agreement(data: dict, rel_tol: float = 1e-6) -> list[str]:
    """Scalar/vectorized sim-time disagreements beyond ``rel_tol``.

    The max-min allocation is unique, so any real divergence is an
    engine bug, not noise; an empty list means every paired grid cell
    agrees.  A document with *zero* paired cells (e.g. a vec-only run
    where every scalar row fell past the cap) is itself a problem: a
    check that compared nothing must not green-light the run.
    """
    if not data.get("speedups"):
        return [
            "no scalar/vectorized row pair ran — the agreement check "
            "verified nothing; raise the scalar cap or lower the flow "
            "counts so both engines share at least one grid cell"
        ]
    problems = []
    for pair in data.get("speedups", ()):
        if pair["sim_time_rel_diff"] > rel_tol:
            problems.append(
                f"{pair['topology']} @ {pair['flows']} {pair['sizes']} flows: "
                f"scalar and vectorized sim times differ by "
                f"{pair['sim_time_rel_diff']:.3g} (tolerance {rel_tol:g})"
            )
    return problems


def format_scale_results(data: dict) -> str:
    """Plain-text rendering of a BENCH_fluid document."""
    lines = [
        f"fluid-engine scaling (preset={data['preset']}, seed={data['seed']}, "
        f"repeats={data['repeats']})",
        "",
        f"{'topology':<22} {'flows':>7} {'sizes':<8} {'engine':<10} {'wall [s]':>10} "
        f"{'recomputes':>10} {'sim time [s]':>13}",
        "-" * 86,
    ]
    for row in data["rows"]:
        if "skipped" in row:
            lines.append(
                f"{row['topology']:<22} {row['flows']:>7} {row['sizes']:<8} "
                f"{row['engine']:<10} {'—':>10} {'—':>10}   skipped: {row['skipped']}"
            )
        else:
            lines.append(
                f"{row['topology']:<22} {row['flows']:>7} {row['sizes']:<8} "
                f"{row['engine']:<10} {row['wall_s']:>10.4f} {row['recomputes']:>10} "
                f"{row['sim_time']:>13.6g}"
            )
    if data["speedups"]:
        lines += [
            "",
            f"{'topology':<22} {'flows':>7} {'sizes':<8} {'speedup':>9} {'rel diff':>10}",
            "-" * 62,
        ]
        for pair in data["speedups"]:
            lines.append(
                f"{pair['topology']:<22} {pair['flows']:>7} {pair['sizes']:<8} "
                f"{pair['speedup']:>8.1f}x {pair['sim_time_rel_diff']:>10.2e}"
            )
    return "\n".join(lines)


def write_bench(data: dict, path: str | Path) -> Path:
    """Serialize a BENCH_fluid document (deterministic layout)."""
    path = Path(path)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


def load_bench(path: str | Path) -> dict:
    """Load and schema-check a BENCH_fluid document."""
    data = json.loads(Path(path).read_text())
    if data.get("kind") != "repro-fluid-scale-bench":
        raise ValueError(f"{path}: not a fluid scale bench document")
    if data.get("schema_version") != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: bench schema v{data.get('schema_version')} != "
            f"supported v{BENCH_SCHEMA_VERSION}"
        )
    return data
