"""Boxplot statistics for the multi-seed experiments (paper Sec. IX).

"We use boxplots in the graphs that show the median (as a thick line
within the box), and the 25 and 75 percentiles (bottom and top lines of
the box), along with the minimum and maximum as whiskerbars.  Every box
plot is computed from 40 to 60 samples of each algorithm using a
different seed."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["BoxStats", "box_stats"]


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary of a sample set (one box of Fig. 4/5)."""

    n: int
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1

    def as_row(self, precision: int = 3) -> str:
        fmt = f"{{:.{precision}f}}"
        return " ".join(
            fmt.format(x)
            for x in (self.minimum, self.q1, self.median, self.q3, self.maximum)
        )


def box_stats(samples: Sequence[float]) -> BoxStats:
    """Five-number summary (min, Q1, median, Q3, max) of ``samples``."""
    arr = np.asarray(list(samples), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample set")
    q1, med, q3 = np.percentile(arr, [25, 50, 75])
    return BoxStats(
        n=int(arr.size),
        minimum=float(arr.min()),
        q1=float(q1),
        median=float(med),
        q3=float(q3),
        maximum=float(arr.max()),
    )
