"""The figure/table regeneration harness (paper Secs. VI, VII, IX).

One function per paper artifact (:mod:`repro.experiments.figures`),
slowdown measurement vs the Full-Crossbar
(:mod:`repro.experiments.slowdown`), boxplot statistics
(:mod:`repro.experiments.stats`) and plain-text rendering
(:mod:`repro.experiments.report`).
"""

from .figures import (
    DETERMINISTIC,
    RANDOMIZED,
    EquivalenceResult,
    Fig3Result,
    Fig4Result,
    FigureSweep,
    SweepSeries,
    application_pattern,
    equivalence,
    fig2,
    fig3,
    fig4,
    fig5,
    table1,
)
from .report import (
    MetricDelta,
    SweepComparison,
    format_equivalence,
    format_fig3,
    format_fig4,
    format_sweep,
    format_sweep_compare,
    format_sweep_results,
    format_table1,
    sweep_compare,
)
from .slowdown import crossbar_time, slowdown
from .stats import BoxStats, box_stats
from .sweep import (
    DEFAULT_METRICS,
    KNOWN_METRICS,
    SCHEMA_VERSION,
    RouteTableCache,
    RunSpec,
    SweepResult,
    SweepSpec,
    execute_run,
    figure_grid_spec,
    load_artifact,
    parse_algorithm_spec,
    plan_runs,
    resolve_pattern,
    run_sweep,
    sweep_to_figure,
    write_artifact,
)

__all__ = [
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "table1",
    "equivalence",
    "FigureSweep",
    "SweepSeries",
    "Fig3Result",
    "Fig4Result",
    "EquivalenceResult",
    "application_pattern",
    "slowdown",
    "crossbar_time",
    "BoxStats",
    "box_stats",
    "format_sweep",
    "format_fig3",
    "format_fig4",
    "format_table1",
    "format_equivalence",
    "DETERMINISTIC",
    "RANDOMIZED",
    # sweep engine
    "SCHEMA_VERSION",
    "DEFAULT_METRICS",
    "KNOWN_METRICS",
    "SweepSpec",
    "RunSpec",
    "SweepResult",
    "RouteTableCache",
    "plan_runs",
    "run_sweep",
    "execute_run",
    "resolve_pattern",
    "parse_algorithm_spec",
    "write_artifact",
    "load_artifact",
    "figure_grid_spec",
    "sweep_to_figure",
    # sweep reports
    "MetricDelta",
    "SweepComparison",
    "sweep_compare",
    "format_sweep_compare",
    "format_sweep_results",
]
