"""The figure/table regeneration harness (paper Secs. VI, VII, IX).

One function per paper artifact (:mod:`repro.experiments.figures`),
slowdown measurement vs the Full-Crossbar
(:mod:`repro.experiments.slowdown`), boxplot statistics
(:mod:`repro.experiments.stats`) and plain-text rendering
(:mod:`repro.experiments.report`).
"""

from .figures import (
    DETERMINISTIC,
    RANDOMIZED,
    EquivalenceResult,
    Fig3Result,
    Fig4Result,
    FigureSweep,
    SweepSeries,
    application_pattern,
    equivalence,
    fig2,
    fig3,
    fig4,
    fig5,
    table1,
)
from .report import (
    format_equivalence,
    format_fig3,
    format_fig4,
    format_sweep,
    format_table1,
)
from .slowdown import crossbar_time, slowdown
from .stats import BoxStats, box_stats

__all__ = [
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "table1",
    "equivalence",
    "FigureSweep",
    "SweepSeries",
    "Fig3Result",
    "Fig4Result",
    "EquivalenceResult",
    "application_pattern",
    "slowdown",
    "crossbar_time",
    "BoxStats",
    "box_stats",
    "format_sweep",
    "format_fig3",
    "format_fig4",
    "format_table1",
    "format_equivalence",
    "DETERMINISTIC",
    "RANDOMIZED",
]
