"""Experiment definitions: one function per figure/table of the paper.

Every function returns plain data structures (dicts / dataclasses) that
the report module renders and the benchmarks assert on; nothing here
depends on plotting.

===========  ==========================================================
``fig2``     slowdown vs w2 for {random, s-mod-k, d-mod-k, colored}
             on XGFT(2;16,16;1,w2) for WRF-256 / CG.D-128 (Fig. 2)
``fig3``     the CG.D-128 traffic structure (Fig. 3) and the Eq.-(2)
             D-mod-k uplink degeneracy analysis
``fig4``     routes-per-NCA distributions for five algorithms on
             XGFT(2;16,16;1,16) and (1,10) (Fig. 4)
``fig5``     fig2 plus the proposed r-NCA-u / r-NCA-d with multi-seed
             boxplots (Fig. 5)
``table1``   the per-level label/link structure (Table I)
``equivalence``  the Sec. VII-B/C S-mod-k == D-mod-k spectra
===========  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..api import Scenario, compare
from ..contention import max_network_contention, routes_per_nca
from ..contention.nca import contention_spectrum
from ..core.factory import make_algorithm
from ..patterns.applications import cg_pattern, cg_transpose_exchange
from ..patterns.base import Pattern
from ..patterns.permutations import Permutation
from ..patterns.registry import resolve_pattern
from ..sim.config import NetworkConfig, PAPER_CONFIG
from ..sim.engines import DEFAULT_ENGINE
from ..topology import XGFT, level_summary, slimmed_two_level
from .stats import BoxStats, box_stats

__all__ = [
    "FigureSweep",
    "SweepSeries",
    "application_pattern",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "table1",
    "equivalence",
    "DETERMINISTIC",
    "RANDOMIZED",
]

DETERMINISTIC = ("s-mod-k", "d-mod-k", "colored")
RANDOMIZED = ("random", "r-nca-u", "r-nca-d")


def _application_spec(app: str) -> str:
    """Canonical registry spec for the paper's application spellings."""
    key = app.lower()
    if key in ("wrf", "wrf-256"):
        return "wrf-256"
    if key in ("cg", "cg.d", "cg.d-128", "cg-128"):
        return "cg-128"
    raise ValueError(f"unknown application {app!r}; expected 'wrf' or 'cg'")


def application_pattern(app: str) -> Pattern:
    """The paper's two applications by name (``"wrf"`` / ``"cg"``).

    A thin alias layer over the pattern registry
    (:func:`repro.patterns.registry.resolve_pattern`) accepting the
    paper's spellings (``"cg.d"`` etc.) on a 256-leaf machine.
    """
    return resolve_pattern(_application_spec(app), 256)


@dataclass(frozen=True)
class SweepSeries:
    """One line/box-series of a slimming sweep figure."""

    algorithm: str
    #: per-w2 values; deterministic algorithms carry a single float,
    #: randomized ones a BoxStats over the seeds
    values: dict[int, float | BoxStats]


@dataclass(frozen=True)
class FigureSweep:
    """A full progressive-slimming figure (Fig. 2 or Fig. 5)."""

    application: str
    w2_values: tuple[int, ...]
    series: tuple[SweepSeries, ...]

    def series_by_name(self, name: str) -> SweepSeries:
        for s in self.series:
            if s.algorithm == name:
                return s
        raise KeyError(name)


def _sweep(
    app: str,
    algorithms: Sequence[str],
    w2_values: Sequence[int],
    seeds: int,
    config: NetworkConfig,
    engine: str,
) -> FigureSweep:
    """The progressive-slimming figure grid, driven through the facade.

    One :class:`repro.api.Scenario` per (algorithm, w2, seed) cell,
    evaluated with shared caches: the crossbar reference is computed
    once per application (every slimmed topology has 256 leaves) and
    each oblivious scheme's all-pairs table once per (topology, seed).
    """
    app_spec = _application_spec(app)  # accept the paper's 'cg.d' spellings
    cells: list[tuple[str, int, Scenario]] = []
    for name in algorithms:
        for w2 in w2_values:
            topo_spec = slimmed_two_level(16, 16, w2).spec()
            cell_seeds = (0,) if name in DETERMINISTIC else tuple(range(seeds))
            for s in cell_seeds:
                cells.append((name, w2, Scenario(topo_spec, app_spec, name, seed=s)))
    table = compare(
        [c[2] for c in cells], metrics=("slowdown",), engine=engine, config=config
    )
    samples: dict[str, dict[int, list[float]]] = {}
    for (name, w2, _), result in zip(cells, table.results):
        samples.setdefault(name, {}).setdefault(w2, []).append(
            result.metrics["slowdown"]
        )
    series = [
        SweepSeries(
            name,
            {
                w2: (vals[0] if name in DETERMINISTIC else box_stats(vals))
                for w2, vals in samples[name].items()
            },
        )
        for name in algorithms
    ]
    return FigureSweep(app, tuple(w2_values), tuple(series))


def fig2(
    app: str,
    w2_values: Sequence[int] | None = None,
    seeds: int = 5,
    config: NetworkConfig = PAPER_CONFIG,
    engine: str = DEFAULT_ENGINE,
) -> FigureSweep:
    """Fig. 2: slowdown of Random / S-mod-k / D-mod-k / Colored vs w2.

    ``seeds`` controls the Random boxes (the paper plots Random as a
    line from one routing sample; we report a box over seeds, whose
    median plays that role).
    """
    if w2_values is None:
        w2_values = tuple(range(16, 0, -1))
    return _sweep(
        app, ("random", "s-mod-k", "d-mod-k", "colored"), w2_values, seeds, config, engine
    )


def fig5(
    app: str,
    w2_values: Sequence[int] | None = None,
    seeds: int = 40,
    config: NetworkConfig = PAPER_CONFIG,
    engine: str = DEFAULT_ENGINE,
) -> FigureSweep:
    """Fig. 5: Fig. 2's algorithms plus r-NCA-u and r-NCA-d (boxplots).

    The paper uses 40-60 seeds per box; the benchmarks default lower for
    runtime and the CLI exposes ``--seeds``.
    """
    if w2_values is None:
        w2_values = tuple(range(16, 0, -1))
    return _sweep(
        app,
        ("s-mod-k", "d-mod-k", "colored", "r-nca-u", "r-nca-d", "random"),
        w2_values,
        seeds,
        config,
        engine,
    )


# ----------------------------------------------------------------------
# Fig. 3 / Eq. (2)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig3Result:
    """The CG.D-128 traffic structure and its D-mod-k degeneracy."""

    phase_names: tuple[str, ...]
    phase_sizes: tuple[int, ...]
    #: number of flows per phase
    phase_flows: tuple[int, ...]
    #: fraction of flows that stay inside their 16-leaf switch, per phase
    phase_locality: tuple[float, ...]
    #: connectivity matrix of the whole pattern (num_ranks^2)
    connectivity: np.ndarray
    #: distinct first-hop uplink ports (r1 = d mod 16) used per source
    #: switch in the transpose phase under D-mod-k
    dmodk_uplinks_per_switch: tuple[int, ...]
    #: network contention level of the transpose phase under D-mod-k
    dmodk_contention: int
    #: ... and under Colored (the achievable optimum)
    colored_contention: int


def fig3(num_ranks: int = 128, m1: int = 16) -> Fig3Result:
    """Fig. 3 + the Sec. VII-A analysis of the CG pattern."""
    pattern = cg_pattern(num_ranks)
    topo = slimmed_two_level(m1, 16, 16)
    names, sizes, flows, locality = [], [], [], []
    for ph in pattern.phases:
        names.append(ph.name)
        sizes.append(ph.flows[0].size if ph.flows else 0)
        flows.append(len(ph.flows))
        local = sum(1 for f in ph.flows if f.src // m1 == f.dst // m1)
        locality.append(local / len(ph.flows) if ph.flows else 1.0)
    transpose = [(s, d) for s, d in cg_transpose_exchange(num_ranks)]
    dmodk = make_algorithm("d-mod-k", topo)
    table = dmodk.build_table([p for p in transpose if p[0] // m1 != p[1] // m1])
    ports = {}
    for f in range(len(table)):
        sw = int(table.src[f]) // m1
        ports.setdefault(sw, set()).add(int(table.ports[f, 1]))
    uplinks = tuple(len(ports[sw]) for sw in sorted(ports))
    colored = make_algorithm("colored", topo)
    ctable = colored.build_table([p for p in transpose if p[0] // m1 != p[1] // m1])
    return Fig3Result(
        phase_names=tuple(names),
        phase_sizes=tuple(sizes),
        phase_flows=tuple(flows),
        phase_locality=tuple(locality),
        connectivity=pattern.connectivity_matrix(),
        dmodk_uplinks_per_switch=uplinks,
        dmodk_contention=max_network_contention(table),
        colored_contention=max_network_contention(ctable),
    )


# ----------------------------------------------------------------------
# Fig. 4
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig4Result:
    """Routes-per-NCA census for one topology (one Fig.-4 panel)."""

    topology: str
    num_ncas: int
    #: deterministic algorithms: exact per-NCA counts
    exact: dict[str, tuple[int, ...]]
    #: randomized algorithms: per-NCA BoxStats over the seeds
    boxed: dict[str, tuple[BoxStats, ...]]


def fig4(
    w2: int,
    seeds: int = 10,
    randomized: Sequence[str] = RANDOMIZED,
) -> Fig4Result:
    """Fig. 4: all-pairs routes assigned per root NCA, five algorithms."""
    topo = slimmed_two_level(16, 16, w2)
    exact: dict[str, tuple[int, ...]] = {}
    for name in ("s-mod-k", "d-mod-k"):
        table = make_algorithm(name, topo).all_pairs_table()
        exact[name] = tuple(int(x) for x in routes_per_nca(table))
    boxed: dict[str, tuple[BoxStats, ...]] = {}
    for name in randomized:
        per_seed = []
        for s in range(seeds):
            table = make_algorithm(name, topo, seed=s).all_pairs_table()
            per_seed.append(routes_per_nca(table))
        counts = np.stack(per_seed)  # (seeds, ncas)
        boxed[name] = tuple(box_stats(counts[:, j]) for j in range(counts.shape[1]))
    return Fig4Result(
        topology=topo.spec(),
        num_ncas=topo.num_nodes(topo.h),
        exact=exact,
        boxed=boxed,
    )


# ----------------------------------------------------------------------
# Table I
# ----------------------------------------------------------------------
def table1(topo: XGFT) -> list[dict[str, object]]:
    """Table I rows for a concrete topology: nodes, labels, links."""
    rows = []
    for info in level_summary(topo):
        sample = min(2, topo.num_nodes(info.level) - 1)
        rows.append(
            {
                "level": info.level,
                "num_nodes": info.num_nodes,
                "example_label": topo.label(info.level, sample),
                "links_down": info.links_down,
                "links_up": info.links_up,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Sec. VII-B equivalence
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EquivalenceResult:
    """Contention spectra of S-mod-k vs D-mod-k over a permutation set."""

    num_permutations: int
    smodk_spectrum: dict[int, int]
    dmodk_spectrum: dict[int, int]
    #: spectrum of D-mod-k over the element-wise *inverse* permutations —
    #: equals smodk_spectrum exactly (the paper's bijection)
    dmodk_inverse_spectrum: dict[int, int]

    @property
    def spectra_match(self) -> bool:
        return self.smodk_spectrum == self.dmodk_inverse_spectrum


def equivalence(
    topo: XGFT | None = None, num_permutations: int = 200, seed: int = 0
) -> EquivalenceResult:
    """Sec. VII-B: #permutations per contention level, S-mod-k vs D-mod-k."""
    if topo is None:
        topo = slimmed_two_level(16, 16, 8)
    rng = np.random.default_rng(seed)
    perms = [Permutation.random(topo.num_leaves, rng) for _ in range(num_permutations)]
    inverses = [p.inverse() for p in perms]
    smodk = make_algorithm("s-mod-k", topo)
    dmodk = make_algorithm("d-mod-k", topo)
    return EquivalenceResult(
        num_permutations=num_permutations,
        smodk_spectrum=dict(contention_spectrum(smodk, perms)),
        dmodk_spectrum=dict(contention_spectrum(dmodk, perms)),
        dmodk_inverse_spectrum=dict(contention_spectrum(dmodk, inverses)),
    )
