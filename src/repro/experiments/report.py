"""Plain-text rendering of the experiment results.

Renders each figure's data the way the paper's plots read: one row per
x-axis point (w2 or NCA id), one column per algorithm, boxplot series as
``median [q1..q3] (min..max)``.  The CLI and the benchmark harness print
through these functions so that running a bench reproduces the paper's
rows on stdout.

Also home of :func:`sweep_compare` — the artifact diff the CI benchmark
job gates on: it matches two sweep artifacts run by run, flags metric
regressions beyond a tolerance, and renders the verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .figures import EquivalenceResult, Fig3Result, Fig4Result, FigureSweep
from .stats import BoxStats
from .sweep import record_id

__all__ = [
    "format_sweep",
    "format_fig3",
    "format_fig4",
    "format_table1",
    "format_equivalence",
    "MetricDelta",
    "SweepComparison",
    "sweep_compare",
    "format_sweep_compare",
    "format_sweep_results",
    "format_fault_sweep",
    "format_dynamic_sweep",
]


def _cell(value: float | BoxStats, precision: int = 2) -> str:
    if isinstance(value, BoxStats):
        return f"{value.median:.{precision}f} [{value.q1:.{precision}f}..{value.q3:.{precision}f}]"
    return f"{value:.{precision}f}"


def format_sweep(sweep: FigureSweep, title: str = "") -> str:
    """Render a Fig.-2/5 slimming sweep as an aligned text table."""
    names = [s.algorithm for s in sweep.series]
    header = ["w2", *names]
    rows = [header]
    for w2 in sweep.w2_values:
        rows.append([str(w2), *(_cell(s.values[w2]) for s in sweep.series)])
    widths = [max(len(r[c]) for r in rows) for c in range(len(header))]
    lines = [title or f"slowdown vs Full-Crossbar — {sweep.application}"]
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if i == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)


def format_fig3(result: Fig3Result) -> str:
    """Render the CG traffic structure and the Eq.-(2) analysis."""
    lines = ["CG.D traffic pattern (Fig. 3):"]
    for name, size, nflows, loc in zip(
        result.phase_names, result.phase_sizes, result.phase_flows, result.phase_locality
    ):
        lines.append(
            f"  {name:<22} flows={nflows:<4} bytes={size:<8} switch-local={loc:6.1%}"
        )
    nz = int(np.count_nonzero(result.connectivity))
    lines.append(f"  connectivity matrix: {result.connectivity.shape}, {nz} nonzero pairs")
    lines.append(
        "Eq. (2) analysis of the transpose phase under D-mod-k: "
        f"uplink ports used per source switch = {sorted(set(result.dmodk_uplinks_per_switch))}"
    )
    lines.append(
        f"  contention level: d-mod-k = {result.dmodk_contention}, "
        f"colored = {result.colored_contention} "
        f"(paper: the phase runs ~8x slower under D-mod-k)"
    )
    return "\n".join(lines)


def format_fig4(result: Fig4Result) -> str:
    """Render a routes-per-NCA census panel."""
    lines = [
        f"routes per NCA — {result.topology} ({result.num_ncas} NCAs)",
        f"{'NCA':>4}  "
        + "  ".join(f"{name:>18}" for name in list(result.exact) + list(result.boxed)),
    ]
    for j in range(result.num_ncas):
        cells = [f"{result.exact[name][j]:>18d}" for name in result.exact]
        cells += [
            f"{result.boxed[name][j].median:>8.0f} ±{result.boxed[name][j].iqr / 2:<8.0f}"
            for name in result.boxed
        ]
        lines.append(f"{j:>4}  " + "  ".join(cells))
    return "\n".join(lines)


def format_table1(rows: Sequence[dict], spec: str = "") -> str:
    """Render Table-I rows for a topology."""
    lines = [f"Table I — {spec}" if spec else "Table I"]
    lines.append(f"{'level':>5} {'#nodes':>8} {'example label':>20} {'down':>8} {'up':>8}")
    for row in rows:
        lines.append(
            f"{row['level']:>5} {row['num_nodes']:>8} "
            f"{str(row['example_label']):>20} {row['links_down']:>8} {row['links_up']:>8}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Sweep artifacts: result table and regression diff
# ----------------------------------------------------------------------
def _sweep_records(artifact) -> list[dict]:
    """Accept a SweepResult or an artifact dict."""
    if hasattr(artifact, "to_dict"):
        artifact = artifact.to_dict()
    return artifact["runs"]


def format_sweep_results(artifact, max_rows: int | None = None) -> str:
    """Render a sweep artifact as one aligned row per run."""
    records = _sweep_records(artifact)
    if not records:
        return "empty sweep (no runs matched)"
    metric_names = sorted({m for r in records for m in r["metrics"]})
    show_faults = any(r.get("faults", "none") != "none" for r in records)
    show_workloads = any(r.get("workload", "none") != "none" for r in records)
    header = ["topology", "pattern", "algorithm", "seed", *metric_names]
    if show_workloads:
        header.insert(4, "workload")
    if show_faults:
        header.insert(4, "faults")
    rows = [header]
    shown = records if max_rows is None else records[:max_rows]
    for r in shown:
        cells = [r["topology"], r["pattern"], r["algorithm"], str(r["seed"])]
        if show_faults:
            cells.append(r.get("faults", "none"))
        if show_workloads:
            cells.append(r.get("workload", "none"))
        for name in metric_names:
            value = r["metrics"].get(name)
            if isinstance(value, float):
                cells.append(f"{value:.3f}")
            elif isinstance(value, list):
                cells.append(f"[{len(value)} values]")
            else:
                cells.append("-" if value is None else str(value))
        rows.append(cells)
    widths = [max(len(row[c]) for row in rows) for c in range(len(header))]
    lines = ["  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip() for row in rows]
    lines.insert(1, "-" * len(lines[0]))
    if max_rows is not None and len(records) > max_rows:
        lines.append(f"... {len(records) - max_rows} more runs")
    return "\n".join(lines)


def format_fault_sweep(artifact) -> str:
    """Render a resilience sweep: one row per fault scenario.

    Cells show the median headline metric (``slowdown`` when present)
    over the swept seeds, annotated with the median disconnected-pair
    percentage when any flow was lost.
    """
    if hasattr(artifact, "to_dict"):
        artifact = artifact.to_dict()
    spec = artifact["spec"]
    records = artifact["runs"]
    if not records:
        return "empty sweep (no runs matched)"
    algorithms = list(spec["algorithms"])
    fault_axis = list(spec.get("faults", ["none"]))
    headline = "slowdown" if "slowdown" in spec["metrics"] else spec["metrics"][0]
    cells: dict[tuple[str, str], dict[str, list[float]]] = {}
    for record in records:
        key = (record.get("faults", "none"), record["algorithm"])
        bucket = cells.setdefault(key, {"headline": [], "disconnected": []})
        value = record["metrics"].get(headline)
        if isinstance(value, (int, float)):
            bucket["headline"].append(float(value))
        lost = record["metrics"].get("disconnected_fraction")
        if isinstance(lost, (int, float)):
            bucket["disconnected"].append(float(lost))

    def render(faults: str, algorithm: str) -> str:
        bucket = cells.get((faults, algorithm))
        if not bucket or not bucket["headline"]:
            return "-"
        text = f"{float(np.median(bucket['headline'])):.2f}"
        if bucket["disconnected"]:
            lost = float(np.median(bucket["disconnected"]))
            if lost > 0:
                text += f" (-{lost:.1%})"
        return text

    header = ["faults", *algorithms]
    rows = [header]
    for faults in fault_axis:
        rows.append([faults, *(render(faults, a) for a in algorithms)])
    widths = [max(len(r[c]) for r in rows) for c in range(len(header))]
    title = (
        f"{headline} vs fault scenario — {spec['patterns'][0]} on "
        f"{spec['topologies'][0]} (median over seeds; (-x%) = flows lost)"
    )
    lines = [title]
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if i == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)


def format_dynamic_sweep(artifact) -> str:
    """Render a dynamic sweep: one row per (workload, fault scenario),
    one column per algorithm — the load-vs-FCT curve tables ``repro
    dynamic`` prints.

    Cells show the median-over-seeds p50/p99 flow-completion times
    (ms); a trailing ``(-x%)`` marks rejected (disconnected) arrivals
    under faults.  Fault scenarios get their own rows (suffix
    ``+<faults>``), never pooled with pristine runs — the full
    per-run detail (throughputs, counts) lives in the artifact's
    ``dynamic`` objects.
    """
    if hasattr(artifact, "to_dict"):
        artifact = artifact.to_dict()
    spec = artifact["spec"]
    records = [r for r in artifact["runs"] if r.get("workload", "none") != "none"]
    if not records:
        return "empty dynamic sweep (no dynamic runs matched)"
    algorithms = list(spec["algorithms"])
    # records carry the *resolved* workload identity (defaults spelled
    # out), which may differ from the spec's input spelling — derive
    # the row axis from the records, in first-appearance (plan) order
    workload_axis = list(dict.fromkeys(r["workload"] for r in records))
    fault_axis = list(spec.get("faults", ["none"]))
    cells: dict[tuple[str, str, str], dict[str, list[float]]] = {}
    for r in records:
        bucket = cells.setdefault(
            (r["workload"], r.get("faults", "none"), r["algorithm"]),
            {"p50": [], "p99": [], "rejected": []},
        )
        bucket["p50"].append(r["metrics"]["fct_p50"])
        bucket["p99"].append(r["metrics"]["fct_p99"])
        bucket["rejected"].append(r["metrics"].get("rejected_fraction", 0.0))

    def render(workload: str, faults: str, algorithm: str) -> str:
        bucket = cells.get((workload, faults, algorithm))
        if not bucket or not bucket["p50"]:
            return "-"
        p50 = float(np.median(bucket["p50"])) * 1e3
        p99 = float(np.median(bucket["p99"])) * 1e3
        text = f"{p50:.3f}/{p99:.3f}"
        rejected = float(np.median(bucket["rejected"])) if bucket["rejected"] else 0.0
        if rejected > 0:
            text += f" (-{rejected:.1%})"
        return text

    header = ["workload", *algorithms]
    rows = [header]
    for workload in workload_axis:
        for faults in fault_axis:
            label = workload if faults == "none" else f"{workload}+{faults}"
            rows.append(
                [label, *(render(workload, faults, a) for a in algorithms)]
            )
    widths = [max(len(r[c]) for r in rows) for c in range(len(header))]
    title = (
        f"FCT p50/p99 [ms] vs workload — {spec['topologies'][0]} "
        f"(median over seeds; (-x%) = arrivals rejected)"
    )
    lines = [title]
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if i == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)


@dataclass(frozen=True)
class MetricDelta:
    """One metric of one run, baseline vs current."""

    run_id: str
    metric: str
    baseline: float
    current: float

    @property
    def ratio(self) -> float:
        return self.current / self.baseline if self.baseline else float("inf")


@dataclass(frozen=True)
class SweepComparison:
    """Outcome of diffing two sweep artifacts run by run."""

    compared: int
    regressions: tuple[MetricDelta, ...]
    improvements: tuple[MetricDelta, ...]
    #: baseline runs with no counterpart in the current artifact —
    #: treated as failures (a shrunk sweep must not pass the gate)
    missing_runs: tuple[str, ...]
    #: ``run_id::metric`` pairs numeric in the baseline but absent from
    #: the current run — also failures (a dropped metric must not make
    #: its regressions invisible)
    missing_metrics: tuple[str, ...]
    new_runs: tuple[str, ...]
    rel_tol: float

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing_runs and not self.missing_metrics


def sweep_compare(
    baseline: dict,
    current: dict,
    rel_tol: float = 0.05,
    abs_tol: float = 1e-9,
    metrics: Sequence[str] | None = None,
) -> SweepComparison:
    """Diff two sweep artifacts; every shipped metric is lower-is-better.

    A current value above ``baseline * (1 + rel_tol) + abs_tol`` is a
    regression; below the mirrored bound, an improvement.  Only numeric
    metrics participate (vector metrics such as ``routes_per_nca`` are
    skipped).  ``metrics`` restricts the comparison to a subset.
    """
    if hasattr(baseline, "to_dict"):
        baseline = baseline.to_dict()
    if hasattr(current, "to_dict"):
        current = current.to_dict()
    base_version = baseline.get("schema_version")
    cur_version = current.get("schema_version")
    if base_version != cur_version:
        raise ValueError(
            f"cannot compare artifacts of different schemas: "
            f"v{base_version} vs v{cur_version}"
        )
    current_by_id = {record_id(r): r for r in current["runs"]}
    baseline_by_id = {record_id(r): r for r in baseline["runs"]}
    regressions: list[MetricDelta] = []
    improvements: list[MetricDelta] = []
    missing: list[str] = []
    missing_metrics: list[str] = []
    compared = 0
    for run_id, base_record in baseline_by_id.items():
        cur_record = current_by_id.get(run_id)
        if cur_record is None:
            missing.append(run_id)
            continue
        for name, base_value in base_record["metrics"].items():
            if metrics is not None and name not in metrics:
                continue
            if not isinstance(base_value, (int, float)):
                continue  # vector metrics (e.g. routes_per_nca) are not diffed
            cur_value = cur_record["metrics"].get(name)
            if not isinstance(cur_value, (int, float)):
                missing_metrics.append(f"{run_id}::{name}")
                continue
            compared += 1
            delta = MetricDelta(run_id, name, float(base_value), float(cur_value))
            if cur_value > base_value * (1 + rel_tol) + abs_tol:
                regressions.append(delta)
            elif cur_value < base_value * (1 - rel_tol) - abs_tol:
                improvements.append(delta)
    added = [rid for rid in current_by_id if rid not in baseline_by_id]
    regressions.sort(key=lambda d: d.ratio, reverse=True)
    improvements.sort(key=lambda d: d.ratio)
    return SweepComparison(
        compared=compared,
        regressions=tuple(regressions),
        improvements=tuple(improvements),
        missing_runs=tuple(missing),
        missing_metrics=tuple(missing_metrics),
        new_runs=tuple(added),
        rel_tol=rel_tol,
    )


def format_sweep_compare(comparison: SweepComparison) -> str:
    """Render a sweep diff the way CI logs want to read it."""
    lines = [
        f"compared {comparison.compared} metric values "
        f"(rel_tol={comparison.rel_tol:.1%})"
    ]
    for delta in comparison.regressions:
        lines.append(
            f"  REGRESSION {delta.run_id} :: {delta.metric}: "
            f"{delta.baseline:.4g} -> {delta.current:.4g} (x{delta.ratio:.3f})"
        )
    for run_id in comparison.missing_runs:
        lines.append(f"  MISSING    {run_id} (in baseline, absent in current)")
    for entry in comparison.missing_metrics:
        lines.append(f"  MISSING    {entry} (metric in baseline, absent in current)")
    for delta in comparison.improvements:
        lines.append(
            f"  improved   {delta.run_id} :: {delta.metric}: "
            f"{delta.baseline:.4g} -> {delta.current:.4g} (x{delta.ratio:.3f})"
        )
    if comparison.new_runs:
        lines.append(f"  {len(comparison.new_runs)} new runs not in baseline")
    lines.append("PASS" if comparison.ok else "FAIL")
    return "\n".join(lines)


def format_equivalence(result: EquivalenceResult) -> str:
    """Render the Sec. VII-B spectra comparison."""
    levels = sorted(
        set(result.smodk_spectrum) | set(result.dmodk_spectrum) | set(result.dmodk_inverse_spectrum)
    )
    lines = [
        f"contention spectra over {result.num_permutations} random permutations",
        f"{'C':>3} {'s-mod-k':>9} {'d-mod-k':>9} {'d-mod-k(P^-1)':>14}",
    ]
    for c in levels:
        lines.append(
            f"{c:>3} {result.smodk_spectrum.get(c, 0):>9} "
            f"{result.dmodk_spectrum.get(c, 0):>9} "
            f"{result.dmodk_inverse_spectrum.get(c, 0):>14}"
        )
    lines.append(
        "bijection check (s-mod-k(P) == d-mod-k(P^-1) exactly): "
        + ("PASS" if result.spectra_match else "FAIL")
    )
    return "\n".join(lines)
