"""Plain-text rendering of the experiment results.

Renders each figure's data the way the paper's plots read: one row per
x-axis point (w2 or NCA id), one column per algorithm, boxplot series as
``median [q1..q3] (min..max)``.  The CLI and the benchmark harness print
through these functions so that running a bench reproduces the paper's
rows on stdout.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .figures import EquivalenceResult, Fig3Result, Fig4Result, FigureSweep
from .stats import BoxStats

__all__ = [
    "format_sweep",
    "format_fig3",
    "format_fig4",
    "format_table1",
    "format_equivalence",
]


def _cell(value: float | BoxStats, precision: int = 2) -> str:
    if isinstance(value, BoxStats):
        return f"{value.median:.{precision}f} [{value.q1:.{precision}f}..{value.q3:.{precision}f}]"
    return f"{value:.{precision}f}"


def format_sweep(sweep: FigureSweep, title: str = "") -> str:
    """Render a Fig.-2/5 slimming sweep as an aligned text table."""
    names = [s.algorithm for s in sweep.series]
    header = ["w2"] + names
    rows = [header]
    for w2 in sweep.w2_values:
        rows.append([str(w2)] + [_cell(s.values[w2]) for s in sweep.series])
    widths = [max(len(r[c]) for r in rows) for c in range(len(header))]
    lines = [title or f"slowdown vs Full-Crossbar — {sweep.application}"]
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if i == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)


def format_fig3(result: Fig3Result) -> str:
    """Render the CG traffic structure and the Eq.-(2) analysis."""
    lines = ["CG.D traffic pattern (Fig. 3):"]
    for name, size, nflows, loc in zip(
        result.phase_names, result.phase_sizes, result.phase_flows, result.phase_locality
    ):
        lines.append(
            f"  {name:<22} flows={nflows:<4} bytes={size:<8} switch-local={loc:6.1%}"
        )
    nz = int(np.count_nonzero(result.connectivity))
    lines.append(f"  connectivity matrix: {result.connectivity.shape}, {nz} nonzero pairs")
    lines.append(
        "Eq. (2) analysis of the transpose phase under D-mod-k: "
        f"uplink ports used per source switch = {sorted(set(result.dmodk_uplinks_per_switch))}"
    )
    lines.append(
        f"  contention level: d-mod-k = {result.dmodk_contention}, "
        f"colored = {result.colored_contention} "
        f"(paper: the phase runs ~8x slower under D-mod-k)"
    )
    return "\n".join(lines)


def format_fig4(result: Fig4Result) -> str:
    """Render a routes-per-NCA census panel."""
    lines = [
        f"routes per NCA — {result.topology} ({result.num_ncas} NCAs)",
        f"{'NCA':>4}  "
        + "  ".join(f"{name:>18}" for name in list(result.exact) + list(result.boxed)),
    ]
    for j in range(result.num_ncas):
        cells = [f"{result.exact[name][j]:>18d}" for name in result.exact]
        cells += [
            f"{result.boxed[name][j].median:>8.0f} ±{result.boxed[name][j].iqr / 2:<8.0f}"
            for name in result.boxed
        ]
        lines.append(f"{j:>4}  " + "  ".join(cells))
    return "\n".join(lines)


def format_table1(rows: Sequence[dict], spec: str = "") -> str:
    """Render Table-I rows for a topology."""
    lines = [f"Table I — {spec}" if spec else "Table I"]
    lines.append(f"{'level':>5} {'#nodes':>8} {'example label':>20} {'down':>8} {'up':>8}")
    for row in rows:
        lines.append(
            f"{row['level']:>5} {row['num_nodes']:>8} "
            f"{str(row['example_label']):>20} {row['links_down']:>8} {row['links_up']:>8}"
        )
    return "\n".join(lines)


def format_equivalence(result: EquivalenceResult) -> str:
    """Render the Sec. VII-B spectra comparison."""
    levels = sorted(
        set(result.smodk_spectrum) | set(result.dmodk_spectrum) | set(result.dmodk_inverse_spectrum)
    )
    lines = [
        f"contention spectra over {result.num_permutations} random permutations",
        f"{'C':>3} {'s-mod-k':>9} {'d-mod-k':>9} {'d-mod-k(P^-1)':>14}",
    ]
    for c in levels:
        lines.append(
            f"{c:>3} {result.smodk_spectrum.get(c, 0):>9} "
            f"{result.dmodk_spectrum.get(c, 0):>9} "
            f"{result.dmodk_inverse_spectrum.get(c, 0):>14}"
        )
    lines.append(
        "bijection check (s-mod-k(P) == d-mod-k(P^-1) exactly): "
        + ("PASS" if result.spectra_match else "FAIL")
    )
    return "\n".join(lines)
