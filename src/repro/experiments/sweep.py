"""Declarative experiment sweeps: plan, execute, memoize, serialize.

The paper's evaluation is a grid of {topology x pattern x algorithm x
seed} runs.  This module turns such a grid into a first-class object:

* :class:`SweepSpec` — the declarative grid (JSON round-trippable);
* :func:`plan_runs` — the cartesian product, with seed collapsing for
  deterministic algorithms;
* :func:`run_sweep` — execution, serial or ``multiprocessing``-parallel,
  with per-``(topology, algorithm, seed)`` route-table memoization: an
  *oblivious* algorithm's all-pairs table is built once and every
  pattern's per-phase tables are row subsets of it — the operational
  payoff of obliviousness (cf. Räcke & Schmid, *Compact Oblivious
  Routing*: one table, any pattern);
* :func:`write_artifact` / :func:`load_artifact` — a deterministic,
  schema-versioned JSON artifact (``docs/sweep_schema.md``) that CI jobs
  cache, diff and regression-gate via
  :func:`repro.experiments.report.sweep_compare`.

All shipped metrics are *lower-is-better* (loads, contention, slowdown,
simulated time), which is what the regression comparison assumes.
"""

from __future__ import annotations

import json
import multiprocessing
import platform
import time
from dataclasses import asdict, dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from ..contention import link_load_summary, max_network_contention, routes_per_nca
from ..core.base import RouteTable, RoutingAlgorithm
from ..core.factory import SINGLE_SEED_ALGORITHMS, is_oblivious, make_algorithm
from ..faults import (
    DegradedTopology,
    RepairedRouting,
    inflation_ratio,
    parse_fault_spec,
    repair_table,
)
from ..patterns import (
    Pattern,
    bit_complement,
    bit_reversal,
    cg_pattern,
    cg_transpose_exchange,
    neighbor_exchange,
    shift,
    tornado_groups,
    transpose,
    wrf_pattern,
)
from ..patterns.applications import CG_PHASE_MESSAGE
from ..sim.config import PAPER_CONFIG, NetworkConfig
from ..sim.network import crossbar_pattern_time, simulate_phase_fluid
from ..topology import XGFT, parse_xgft, slimmed_two_level

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_METRICS",
    "KNOWN_METRICS",
    "RESILIENCE_METRICS",
    "SweepSpec",
    "RunSpec",
    "SweepResult",
    "RouteTableCache",
    "format_run_id",
    "record_id",
    "plan_runs",
    "run_sweep",
    "execute_run",
    "resolve_pattern",
    "parse_algorithm_spec",
    "write_artifact",
    "load_artifact",
    "figure_grid_spec",
    "fault_grid_spec",
    "sweep_to_figure",
]

#: version stamp of the JSON artifact layout (docs/sweep_schema.md);
#: v2 added the ``faults`` axis and the resilience metrics
SCHEMA_VERSION = 2

#: metrics computed when a spec does not name its own
DEFAULT_METRICS = (
    "max_link_load",
    "mean_link_load",
    "max_network_contention",
    "sim_time",
    "slowdown",
)

#: resilience metrics, meaningful on the ``faults`` axis (all
#: lower-is-better; trivially 0 / 1 / 1 on the pristine topology)
RESILIENCE_METRICS = (
    "disconnected_fraction",
    "max_load_inflation",
    "mean_load_inflation",
)

#: every metric name the engine knows how to compute
KNOWN_METRICS = DEFAULT_METRICS + RESILIENCE_METRICS + ("routes_per_nca",)


# ----------------------------------------------------------------------
# Grid specification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepSpec:
    """A declarative sweep grid.

    ``algorithms`` entries are factory names, optionally parameterized:
    ``"r-nca-d(map_kind=mod)"`` passes ``map_kind="mod"`` to the builder
    (the ablation grids rely on this).  ``seeds`` is the number of seeds
    per *randomized* algorithm; deterministic and single-series schemes
    (see :data:`repro.core.factory.SINGLE_SEED_ALGORITHMS`) are planned
    with seed 0 only.  ``faults`` is the degraded-topology axis: fault
    spec strings per :func:`repro.faults.parse_fault_spec` (``"none"``
    keeps the topology pristine).
    """

    topologies: tuple[str, ...]
    patterns: tuple[str, ...]
    algorithms: tuple[str, ...]
    seeds: int = 1
    metrics: tuple[str, ...] = DEFAULT_METRICS
    engine: str = "fluid"
    name: str = ""
    faults: tuple[str, ...] = ("none",)

    def __post_init__(self):
        if not self.topologies or not self.patterns or not self.algorithms:
            raise ValueError("a sweep needs at least one topology, pattern and algorithm")
        if not self.faults:
            raise ValueError("the faults axis needs at least one entry ('none')")
        if self.seeds < 1:
            raise ValueError("seeds must be >= 1")
        if self.engine not in ("fluid", "replay"):
            raise ValueError(f"unknown engine {self.engine!r}")
        unknown = set(self.metrics) - set(KNOWN_METRICS)
        if unknown:
            raise ValueError(
                f"unknown metrics {sorted(unknown)}; known: {', '.join(KNOWN_METRICS)}"
            )
        for spec in self.topologies:
            parse_xgft(spec)  # fail fast on malformed topology specs
        for spec in self.algorithms:
            parse_algorithm_spec(spec)
        for spec in self.faults:
            parse_fault_spec(spec)

    def to_dict(self) -> dict:
        return {
            "topologies": list(self.topologies),
            "patterns": list(self.patterns),
            "algorithms": list(self.algorithms),
            "seeds": self.seeds,
            "metrics": list(self.metrics),
            "engine": self.engine,
            "name": self.name,
            "faults": list(self.faults),
        }

    @staticmethod
    def from_dict(d: dict) -> "SweepSpec":
        return SweepSpec(
            topologies=tuple(d["topologies"]),
            patterns=tuple(d["patterns"]),
            algorithms=tuple(d["algorithms"]),
            seeds=int(d.get("seeds", 1)),
            metrics=tuple(d.get("metrics", DEFAULT_METRICS)),
            engine=d.get("engine", "fluid"),
            name=d.get("name", ""),
            faults=tuple(d.get("faults", ("none",))),
        )


def format_run_id(
    topology: str, pattern: str, algorithm: str, seed: int, faults: str = "none"
) -> str:
    """The canonical run identity — the key ``sweep_compare`` matches on.

    Single source of truth: :attr:`RunSpec.run_id` and the artifact
    record ids are both derived from here, so the format cannot drift
    apart and silently break the baseline matching.
    """
    base = f"{topology}/{pattern}/{algorithm}@{seed}"
    return base if faults == "none" else f"{base}+{faults}"


def record_id(record: dict) -> str:
    """:func:`format_run_id` applied to an artifact run record."""
    return format_run_id(
        record["topology"],
        record["pattern"],
        record["algorithm"],
        record["seed"],
        record.get("faults", "none"),
    )


@dataclass(frozen=True)
class RunSpec:
    """One cell of the grid: a single routed-and-measured scenario."""

    topology: str
    pattern: str
    algorithm: str
    seed: int
    faults: str = "none"

    @property
    def run_id(self) -> str:
        return format_run_id(
            self.topology, self.pattern, self.algorithm, self.seed, self.faults
        )

    @property
    def memo_key(self) -> tuple[str, str, int]:
        """Route tables are shared across patterns and fault scenarios
        (repair filters the *pristine* table), never across these."""
        return (self.topology, self.algorithm, self.seed)


def parse_algorithm_spec(spec: str) -> tuple[str, dict]:
    """Split ``"name(key=value,...)"`` into a factory name and kwargs.

    Values parse as int when possible, ``true``/``false`` as bool,
    anything else stays a string.
    """
    spec = spec.strip()
    if "(" not in spec:
        return spec, {}
    if not spec.endswith(")"):
        raise ValueError(f"malformed algorithm spec {spec!r}")
    name, _, arglist = spec[:-1].partition("(")
    kwargs: dict = {}
    for item in filter(None, (s.strip() for s in arglist.split(","))):
        key, sep, value = item.partition("=")
        if not sep or not key.strip():
            raise ValueError(f"malformed parameter {item!r} in {spec!r}")
        kwargs[key.strip()] = _parse_value(value.strip())
    return name.strip(), kwargs


def _parse_value(text: str):
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def _make_run_algorithm(spec: str, topo: XGFT, seed: int) -> RoutingAlgorithm:
    name, kwargs = parse_algorithm_spec(spec)
    return make_algorithm(name, topo, seed=seed, **kwargs)


# ----------------------------------------------------------------------
# Pattern registry
# ----------------------------------------------------------------------
def resolve_pattern(name: str, num_leaves: int) -> Pattern:
    """Instantiate a pattern by name for a machine of ``num_leaves``.

    Application patterns carry their rank count in the name (``wrf-256``,
    ``cg-128``; bare ``wrf`` / ``cg`` use the paper's sizes) and must fit
    on the topology.  Synthetic patterns (``shift-1``, ``bit-reversal``,
    ``bit-complement``, ``transpose``, ``tornado-4``, ``neighbor-1``,
    ``all-pairs``) scale with the machine.
    """
    key = name.lower().strip()
    head, _, tail = key.partition("-")
    if key in ("wrf", "cg") or (head in ("wrf", "cg") and tail.isdigit()):
        n = int(tail) if tail.isdigit() else (256 if head == "wrf" else 128)
        pattern = wrf_pattern(n) if head == "wrf" else cg_pattern(n)
    elif key == "cg-transpose" or (key.startswith("cg-transpose-") and key[13:].isdigit()):
        n = int(key[13:]) if len(key) > 13 else 128
        pattern = Pattern.single_phase(
            cg_transpose_exchange(n), size=CG_PHASE_MESSAGE, name=key, num_ranks=n
        )
    elif key == "all-pairs":
        src, dst = np.divmod(np.arange(num_leaves * num_leaves, dtype=np.int64), num_leaves)
        keep = src != dst
        pattern = Pattern.single_phase(
            zip(src[keep].tolist(), dst[keep].tolist()), name=key, num_ranks=num_leaves
        )
    elif head == "shift" and tail.isdigit():
        pattern = shift(num_leaves, int(tail)).pattern(name=key)
    elif key == "bit-reversal":
        pattern = bit_reversal(num_leaves).pattern(name=key)
    elif key == "bit-complement":
        pattern = bit_complement(num_leaves).pattern(name=key)
    elif key == "transpose":
        side = int(round(num_leaves**0.5))
        if side * side != num_leaves:
            raise ValueError(f"transpose needs a square leaf count, got {num_leaves}")
        pattern = transpose(side, side).pattern(name=key)
    elif head == "tornado" and tail.isdigit():
        pattern = tornado_groups(num_leaves, int(tail)).pattern(name=key)
    elif head == "neighbor" and tail.isdigit():
        pattern = Pattern.single_phase(
            neighbor_exchange(num_leaves, int(tail)), name=key, num_ranks=num_leaves
        )
    else:
        raise ValueError(f"unknown pattern {name!r}")
    if pattern.num_ranks > num_leaves:
        raise ValueError(
            f"pattern {name!r} needs {pattern.num_ranks} ranks but the "
            f"topology only has {num_leaves} leaves"
        )
    return pattern


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------
def plan_runs(spec: SweepSpec, run_filter: str | None = None) -> tuple[RunSpec, ...]:
    """The grid's cartesian product, memo-key-contiguous.

    Runs sharing a ``(topology, algorithm, seed)`` route table are
    consecutive, so parallel chunking by memo key keeps each table build
    inside one worker.  Deterministic/single-series algorithms collapse
    the seed axis to ``{0}`` on the pristine topology; under a fault
    scenario the seed still varies the *repair* draw, so the full seed
    range is planned there even for deterministic schemes.
    ``run_filter`` is an ``fnmatch`` pattern applied to ``run_id``
    (substring match when it has no wildcards).
    """
    for topo_spec in spec.topologies:
        topo = parse_xgft(topo_spec)
        for pattern in spec.patterns:
            resolve_pattern(pattern, topo.num_leaves)  # validate fit
    runs: list[RunSpec] = []
    fault_kinds = {faults: parse_fault_spec(faults).kind for faults in spec.faults}
    for topo_spec in spec.topologies:
        for algorithm in spec.algorithms:
            name, _ = parse_algorithm_spec(algorithm)
            single = name in SINGLE_SEED_ALGORITHMS
            for seed in range(spec.seeds):
                for faults in spec.faults:
                    if single and seed > 0 and fault_kinds[faults] == "none":
                        continue  # deterministic scheme, pristine fabric: inert seed
                    for pattern in spec.patterns:
                        runs.append(RunSpec(topo_spec, pattern, algorithm, seed, faults))
    if run_filter:
        glob = run_filter if any(c in run_filter for c in "*?[") else f"*{run_filter}*"
        runs = [r for r in runs if fnmatch(r.run_id, glob)]
    return tuple(runs)


# ----------------------------------------------------------------------
# Route-table memoization
# ----------------------------------------------------------------------
class RouteTableCache:
    """All-pairs route tables keyed by ``(topology, algorithm, seed)``.

    Holds one table per oblivious scheme instance; per-pattern tables are
    row subsets (:func:`subset_table`).  ``builds``/``hits`` feed the
    artifact's cache section, which the memoization tests assert on.
    """

    def __init__(self):
        self._tables: dict[tuple, RouteTable] = {}
        self._rows: dict[tuple, np.ndarray] = {}
        self.builds = 0
        self.hits = 0

    def all_pairs_table(self, key: tuple, algorithm: RoutingAlgorithm) -> RouteTable:
        table = self._tables.get(key)
        if table is None:
            table = self._tables[key] = algorithm.all_pairs_table()
            self.builds += 1
        else:
            self.hits += 1
        return table

    def row_index(self, key: tuple) -> np.ndarray:
        """``(n*n,)`` flat-pair -> row lookup for the cached table."""
        rows = self._rows.get(key)
        if rows is None:
            table = self._tables[key]
            n = table.topo.num_leaves
            rows = np.full(n * n, -1, dtype=np.int64)
            rows[table.src * n + table.dst] = np.arange(len(table), dtype=np.int64)
            self._rows[key] = rows
        return rows

    def stats(self) -> dict:
        return {"table_builds": self.builds, "table_hits": self.hits}


def subset_table(
    full: RouteTable, rows: np.ndarray, pairs: Sequence[tuple[int, int]]
) -> RouteTable:
    """The rows of an all-pairs table covering ``pairs`` (order kept)."""
    n = full.topo.num_leaves
    arr = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    idx = rows[arr[:, 0] * n + arr[:, 1]]
    if (idx < 0).any():
        raise ValueError("pair outside the all-pairs table (self-pair?)")
    return RouteTable(
        full.topo, full.src[idx], full.dst[idx], full.nca_level[idx], full.ports[idx]
    )


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def _phase_pairs(pattern: Pattern) -> list[tuple[list[tuple[int, int]], list[int]]]:
    """Per-phase (pairs, sizes) with self-flows dropped (they use no links)."""
    out = []
    for phase in pattern.phases:
        kept = [(f.pair, f.size) for f in phase.flows if f.src != f.dst]
        if kept:
            out.append(([p for p, _ in kept], [s for _, s in kept]))
    return out


def execute_run(
    run: RunSpec,
    metrics: Sequence[str],
    engine: str = "fluid",
    cache: RouteTableCache | None = None,
    config: NetworkConfig = PAPER_CONFIG,
    _crossbar_memo: dict | None = None,
) -> dict:
    """Execute one grid cell and return its artifact record."""
    t0 = time.perf_counter()
    topo = parse_xgft(run.topology)
    pattern = resolve_pattern(run.pattern, topo.num_leaves)
    algorithm = _make_run_algorithm(run.algorithm, topo, run.seed)
    cache = cache if cache is not None else RouteTableCache()

    phases = _phase_pairs(pattern)
    tables: list[RouteTable] = []
    if is_oblivious(algorithm):
        full = cache.all_pairs_table(run.memo_key, algorithm)
        rows = cache.row_index(run.memo_key)
        tables = [subset_table(full, rows, pairs) for pairs, _ in phases]
    else:
        tables = [algorithm.build_table(pairs) for pairs, _ in phases]

    # degrade-and-repair: faults are realized against the *routed*
    # traffic (adversarial specs cut the most loaded cables of this very
    # pattern), the pristine tables become the resilience baseline, and
    # every downstream metric sees only surviving, repaired flows
    fault_spec = parse_fault_spec(run.faults)
    degraded = None
    fault_info: dict[str, int] = {}
    baseline_agg = None
    if fault_spec.kind != "none":
        # seeded random draws depend only on the fault spec (not the run
        # seed), so every algorithm and routing seed of a row faces the
        # *same* degraded fabric; sweep several draws by listing several
        # specs ("links:rate=0.05,seed=0", "links:rate=0.05,seed=1", ...).
        # adversarial "worst-links" specs are the deliberate exception:
        # each cell's adversary watches that cell's own routes, so every
        # scheme faces *its own* worst case (per-cell fabrics, see
        # fault_info for what was actually cut)
        traffic = _concat_all(tables) if tables else None
        fault_set = fault_spec.realize(topo, table=traffic)
        degraded = DegradedTopology(topo, fault_set)
        repairs = [repair_table(t, degraded, seed=run.seed) for t in tables]
        baseline_agg = _load_aggregate(tables)
        tables = [r.table for r in repairs]
        phases = [
            (
                [pairs[i] for i in r.surviving_rows()],
                [sizes[i] for i in r.surviving_rows()],
            )
            for (pairs, sizes), r in zip(phases, repairs)
        ]
        fault_info = {
            "failed_cables": degraded.num_failed_cables,
            "failed_switches": degraded.num_failed_switches,
            "broken_flows": sum(r.num_broken for r in repairs),
            "repaired_flows": sum(r.num_repaired for r in repairs),
            "disconnected_flows": sum(r.num_disconnected for r in repairs),
            "total_flows": sum(len(r.broken) for r in repairs),
        }

    values: dict[str, object] = {}
    # the used-link histogram is always part of the record (phases are
    # aggregated; idle links are omitted so multi-phase runs don't count
    # the same idle link once per phase)
    max_load, mean_load, histogram = _load_aggregate(tables)
    if "max_link_load" in metrics:
        values["max_link_load"] = max_load
    if "mean_link_load" in metrics:
        values["mean_link_load"] = mean_load
    if "max_network_contention" in metrics:
        values["max_network_contention"] = max(
            (max_network_contention(t) for t in tables), default=0
        )
    if "routes_per_nca" in metrics and tables:
        merged = _concat_all(tables)
        values["routes_per_nca"] = [int(x) for x in routes_per_nca(merged)]
    if "disconnected_fraction" in metrics:
        total = fault_info.get("total_flows", 0)
        values["disconnected_fraction"] = (
            fault_info["disconnected_flows"] / total if total else 0.0
        )
    if "max_load_inflation" in metrics:
        values["max_load_inflation"] = (
            inflation_ratio(max_load, baseline_agg[0]) if baseline_agg else 1.0
        )
    if "mean_load_inflation" in metrics:
        values["mean_load_inflation"] = (
            inflation_ratio(mean_load, baseline_agg[1]) if baseline_agg else 1.0
        )
    if "sim_time" in metrics or "slowdown" in metrics:
        sim_time = _simulate(
            run, topo, pattern, algorithm, tables, phases, engine, config, degraded
        )
        if "sim_time" in metrics:
            values["sim_time"] = sim_time
        if "slowdown" in metrics:
            if fault_info.get("disconnected_flows", 0) > 0:
                # lossy scenario: the reference must cover the *same*
                # surviving flows as the numerator, or losing traffic
                # would drive slowdown below the 1.0 floor and the
                # lower-is-better gate would reward disconnection;
                # flow loss itself is disconnected_fraction's job
                t_ref = _crossbar_time_of_phases(phases, topo.num_leaves, config)
                values["slowdown"] = sim_time / t_ref if t_ref > 0 else 1.0
            else:
                memo = _crossbar_memo if _crossbar_memo is not None else {}
                ref_key = (run.pattern, topo.num_leaves, engine)
                t_ref = memo.get(ref_key)
                if t_ref is None:
                    t_ref = memo[ref_key] = _crossbar_reference(
                        pattern, topo, engine, config
                    )
                values["slowdown"] = sim_time / t_ref
    record = {
        "topology": run.topology,
        "pattern": run.pattern,
        "algorithm": run.algorithm,
        "seed": run.seed,
        "faults": run.faults,
        "metrics": {k: _round(v) for k, v in values.items()},
        "load_histogram": {str(k): v for k, v in sorted(histogram.items())},
        "wall_time_s": round(time.perf_counter() - t0, 6),
    }
    if fault_info:
        record["fault_info"] = fault_info
    return record


def _round(value):
    return round(value, 10) if isinstance(value, float) else value


def _concat_all(tables: list[RouteTable]) -> RouteTable:
    merged = tables[0]
    for t in tables[1:]:
        merged = merged.concat(t)
    return merged


def _load_aggregate(tables: list[RouteTable]) -> tuple[int, float, dict[int, int]]:
    """Across-phase (max_load, mean_load_over_used_links, histogram)."""
    histogram: dict[int, int] = {}
    max_load, used_sum, used_links = 0, 0.0, 0
    for table in tables:
        summary = link_load_summary(table)
        max_load = max(max_load, summary.max_load)
        used_sum += summary.mean_load * summary.num_used_links
        used_links += summary.num_used_links
        for load, count in summary.histogram.items():
            if load > 0:
                histogram[load] = histogram.get(load, 0) + count
    return max_load, used_sum / used_links if used_links else 0.0, histogram


def _simulate(
    run, topo, pattern, algorithm, tables, phases, engine, config, degraded=None
) -> float:
    if engine == "fluid":
        return sum(
            simulate_phase_fluid(table, sizes, config, degraded=degraded).duration
            for table, (_, sizes) in zip(tables, phases)
        )
    from ..dimemas import pattern_trace, replay_on_xgft

    if degraded is not None:
        # replay cannot drop flows: an MPI trace with a disconnected pair
        # would simply deadlock, so reject early with a diagnostic
        routed = sum(len(t) for t in tables)
        offered = sum(len(p) for p, _ in _phase_pairs(pattern))
        if routed < offered:
            raise ValueError(
                f"{run.run_id}: {offered - routed} flow(s) disconnected by "
                f"{run.faults!r}; the replay engine cannot drop flows — use "
                "the fluid engine for lossy fault scenarios"
            )
        algorithm = RepairedRouting(algorithm, degraded, seed=run.seed)
    algorithm.prepare(sorted({(s, d) for s, d in pattern.pairs() if s != d}))
    return replay_on_xgft(pattern_trace(pattern), topo, algorithm, config).total_time


def _crossbar_time_of_phases(
    phases: list[tuple[list[tuple[int, int]], list[int]]],
    num_leaves: int,
    config: NetworkConfig,
) -> float:
    """Full-Crossbar time of explicit per-phase (pairs, sizes) lists.

    The lossy-fault slowdown reference: unlike
    :func:`_crossbar_reference` it times exactly the flows given (the
    survivors), not the whole pattern.
    """
    from ..sim.fluid import FluidSimulator
    from ..sim.network import crossbar_link_space

    total = 0.0
    for pairs, sizes in phases:
        if not pairs:
            continue
        space = crossbar_link_space(num_leaves)
        sim = FluidSimulator(space.num_links, config.link_bandwidth)
        for fid, ((src, dst), size) in enumerate(zip(pairs, sizes)):
            sim.add_flow(fid, [space.injection(src), space.ejection(dst)], float(size))
        total += sim.run_until_idle()
    return total


def _crossbar_reference(pattern, topo, engine, config) -> float:
    if engine == "fluid":
        t_ref = crossbar_pattern_time(pattern, topo.num_leaves, config)
    else:
        from ..dimemas import pattern_trace, replay_on_crossbar

        t_ref = replay_on_crossbar(pattern_trace(pattern), topo.num_leaves, config).total_time
    if t_ref <= 0:
        raise ValueError("crossbar reference time must be positive (empty pattern?)")
    return t_ref


# ----------------------------------------------------------------------
# The sweep driver
# ----------------------------------------------------------------------
@dataclass
class SweepResult:
    """Executed sweep: the artifact's in-memory form."""

    spec: SweepSpec
    runs: list[dict]
    cache_stats: dict = field(default_factory=dict)
    total_wall_time_s: float = 0.0

    def to_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": "repro-sweep-results",
            "spec": self.spec.to_dict(),
            "environment": _environment(),
            "cache": dict(self.cache_stats),
            "total_wall_time_s": round(self.total_wall_time_s, 6),
            "runs": self.runs,
        }

    def run_map(self) -> dict[str, dict]:
        return {record_id(r): r for r in self.runs}


def _environment() -> dict:
    from .. import __version__

    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "numpy": np.__version__,
        "repro": __version__,
        "cpu_count": multiprocessing.cpu_count(),
    }


def _execute_group(payload: tuple[dict, list[tuple[int, dict]]]) -> tuple[list, dict]:
    """Worker entry: one memo group = one route-table build, many patterns."""
    spec_d, indexed_runs = payload
    spec = SweepSpec.from_dict(spec_d)
    cache = RouteTableCache()
    crossbar_memo: dict = {}
    out = []
    for index, run_d in indexed_runs:
        run = RunSpec(**run_d)
        out.append(
            (
                index,
                execute_run(
                    run, spec.metrics, spec.engine, cache, _crossbar_memo=crossbar_memo
                ),
            )
        )
    return out, cache.stats()


def run_sweep(
    spec: SweepSpec,
    jobs: int = 1,
    run_filter: str | None = None,
) -> SweepResult:
    """Execute a sweep, serial (``jobs=1``) or process-parallel.

    Parallel execution partitions the plan by memo key, so each
    ``(topology, algorithm, seed)`` route table is built exactly once in
    exactly one worker regardless of how many patterns consume it.
    Results are deterministic and ordered by the plan, independent of
    ``jobs``.
    """
    t0 = time.perf_counter()
    runs = plan_runs(spec, run_filter)
    if not runs:
        return SweepResult(spec, [], {"table_builds": 0, "table_hits": 0}, 0.0)

    groups: dict[tuple, list[tuple[int, dict]]] = {}
    for index, run in enumerate(runs):
        groups.setdefault(run.memo_key, []).append((index, asdict(run)))
    payloads = [(spec.to_dict(), indexed) for indexed in groups.values()]

    records: list[dict | None] = [None] * len(runs)
    stats = {"table_builds": 0, "table_hits": 0}
    jobs = max(1, min(jobs, len(payloads)))
    if jobs == 1:
        results = map(_execute_group, payloads)
    else:
        pool = multiprocessing.Pool(processes=jobs)
        try:
            results = pool.imap_unordered(_execute_group, payloads)
            results = list(results)
        finally:
            pool.close()
            pool.join()
    for group_records, group_stats in results:
        for index, record in group_records:
            records[index] = record
        for key in stats:
            stats[key] += group_stats[key]
    assert all(r is not None for r in records)
    return SweepResult(spec, records, stats, time.perf_counter() - t0)


# ----------------------------------------------------------------------
# Artifact I/O
# ----------------------------------------------------------------------
def write_artifact(result: SweepResult, path: str | Path) -> Path:
    """Serialize a sweep to the schema-versioned JSON artifact."""
    path = Path(path)
    path.write_text(json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n")
    return path


def load_artifact(path: str | Path) -> dict:
    """Load and schema-check a sweep artifact."""
    data = json.loads(Path(path).read_text())
    if data.get("kind") != "repro-sweep-results":
        raise ValueError(f"{path}: not a sweep artifact")
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: artifact schema v{version} != supported v{SCHEMA_VERSION}"
        )
    return data


# ----------------------------------------------------------------------
# Figure grids (the paper's evaluation as sweep specs)
# ----------------------------------------------------------------------
def _slimming_topologies(w2_values: Iterable[int]) -> tuple[str, ...]:
    return tuple(slimmed_two_level(16, 16, w2).spec() for w2 in w2_values)


def figure_grid_spec(
    figure: str,
    app: str | None = None,
    w2_values: Sequence[int] | None = None,
    seeds: int = 5,
) -> SweepSpec:
    """The paper's Fig. 2/4/5 evaluation grids as :class:`SweepSpec` s.

    ``fig2``/``fig5`` sweep slowdown over the progressive-slimming
    topologies for one application; ``fig4`` sweeps the all-pairs
    routes-per-NCA census.
    """
    if w2_values is None:
        w2_values = tuple(range(16, 0, -1))
    topologies = _slimming_topologies(w2_values)
    if figure == "fig2":
        if app is None:
            raise ValueError("fig2 needs an application")
        return SweepSpec(
            topologies=topologies,
            patterns=(app,),
            algorithms=("random", "s-mod-k", "d-mod-k", "colored"),
            seeds=seeds,
            metrics=("slowdown",),
            name=f"fig2-{app}",
        )
    if figure == "fig5":
        if app is None:
            raise ValueError("fig5 needs an application")
        return SweepSpec(
            topologies=topologies,
            patterns=(app,),
            algorithms=("s-mod-k", "d-mod-k", "colored", "r-nca-u", "r-nca-d", "random"),
            seeds=seeds,
            metrics=("slowdown",),
            name=f"fig5-{app}",
        )
    if figure == "fig4":
        return SweepSpec(
            topologies=topologies,
            patterns=("all-pairs",),
            algorithms=("s-mod-k", "d-mod-k", "random", "r-nca-u", "r-nca-d"),
            seeds=seeds,
            metrics=("routes_per_nca",),
            name="fig4",
        )
    raise ValueError(f"unknown figure {figure!r} (expected fig2, fig4 or fig5)")


def fault_grid_spec(
    topology: str,
    pattern: str,
    algorithms: Sequence[str],
    rates: Sequence[float],
    kind: str = "links",
    seeds: int = 3,
    engine: str = "fluid",
    metrics: Sequence[str] | None = None,
) -> SweepSpec:
    """A failure-rate resilience grid (Fig.-2-style curves vs fault rate).

    ``rates`` are failure rates over cables (``kind="links"``) or inner
    switches (``kind="switches"``); rate 0 maps to the pristine
    ``"none"`` scenario.  All algorithms and routing seeds of a rate row
    face the same fault draw; the ``seeds`` axis varies routing and
    repair randomness only (for deterministic schemes, repair randomness
    alone — their pristine rows stay single-seed).
    """
    if kind not in ("links", "switches"):
        raise ValueError(f"unknown fault kind {kind!r} (expected links or switches)")
    if not rates:
        raise ValueError("need at least one failure rate")
    faults = tuple(
        "none" if rate == 0 else f"{kind}:rate={rate:g}" for rate in rates
    )
    if len(set(faults)) != len(faults):
        raise ValueError(f"duplicate failure rates in {list(rates)}")
    if metrics is None:
        metrics = ("max_link_load", "slowdown") + RESILIENCE_METRICS
    return SweepSpec(
        topologies=(topology,),
        patterns=(pattern,),
        algorithms=tuple(algorithms),
        seeds=seeds,
        metrics=tuple(metrics),
        engine=engine,
        name=f"faults-{kind}-{pattern}",
        faults=faults,
    )


def sweep_to_figure(result: SweepResult):
    """Adapt a fig2/fig5-shaped sweep into a :class:`FigureSweep`.

    Groups the ``slowdown`` metric by algorithm and w2.  Single-seed
    algorithms carry plain floats, randomized ones :class:`BoxStats`
    over the seeds — even a one-seed box, matching the original figure
    harness (bench assertions read ``.median`` off randomized series).
    """
    from .figures import FigureSweep, SweepSeries
    from .stats import box_stats

    w2_of = {spec: parse_xgft(spec).w[-1] for spec in result.spec.topologies}
    samples: dict[str, dict[int, list[float]]] = {}
    for record in result.runs:
        w2 = w2_of[record["topology"]]
        samples.setdefault(record["algorithm"], {}).setdefault(w2, []).append(
            record["metrics"]["slowdown"]
        )
    series = []
    for algorithm in result.spec.algorithms:
        name, _ = parse_algorithm_spec(algorithm)
        single = name in SINGLE_SEED_ALGORITHMS
        per_w2 = samples.get(algorithm, {})
        values = {
            w2: (vals[0] if single else box_stats(vals)) for w2, vals in per_w2.items()
        }
        series.append(SweepSeries(algorithm, values))
    return FigureSweep(
        result.spec.patterns[0],
        tuple(sorted(w2_of.values(), reverse=True)),
        tuple(series),
    )
