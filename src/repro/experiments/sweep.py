"""Declarative experiment sweeps: plan, execute, memoize, serialize.

The paper's evaluation is a grid of {topology x pattern x algorithm x
seed} runs.  This module turns such a grid into a first-class object:

* :class:`SweepSpec` — the declarative grid (JSON round-trippable);
* :func:`plan_runs` — the cartesian product, with seed collapsing for
  deterministic algorithms;
* :func:`run_sweep` — execution, serial or ``multiprocessing``-parallel.

Each grid cell is a :class:`repro.api.Scenario`: the sweep engine only
plans, schedules and serializes — routing, degradation and measurement
live behind the facade (:func:`repro.api.evaluate_scenario`), and every
axis resolves through the unified registries (:mod:`repro.registry`),
so new algorithms, patterns, topologies and metrics join a sweep by
*registration*, not by editing this module.

Per-``(topology, algorithm, seed)`` route tables are memoized across
patterns and fault scenarios: an *oblivious* algorithm's all-pairs
table is built once and every pattern's per-phase tables are row
subsets of it — the operational payoff of obliviousness (cf. Räcke &
Schmid, *Compact Oblivious Routing*: one table, any pattern).

:func:`write_artifact` / :func:`load_artifact` give a deterministic,
schema-versioned JSON artifact (``docs/sweep_schema.md``) that CI jobs
cache, diff and regression-gate via
:func:`repro.experiments.report.sweep_compare`.  All shipped metrics
are *lower-is-better* (loads, contention, slowdown, simulated time),
which is what the regression comparison assumes.
"""

from __future__ import annotations

import json
import multiprocessing
import platform
import time
import warnings
from contextlib import nullcontext
from dataclasses import asdict, dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from ..api import (
    RouteTableCache,
    Scenario,
    evaluate_scenario,
    format_run_id,
    subset_table,
)
from ..core.factory import SINGLE_SEED_ALGORITHMS
from ..faults import parse_fault_spec
from ..metrics import DEFAULT_METRICS, KNOWN_METRICS, METRICS, RESILIENCE_METRICS
from ..obs import active as _obs_active
from ..obs.trace import TRACER, aggregate_spans, merge_span_aggregates
from ..patterns import Pattern
from ..patterns.registry import resolve_pattern as _resolve_pattern
from ..registry import parse_spec
from ..sim.engines import DEFAULT_ENGINE, resolve_engine
from ..topology import slimmed_two_level
from ..topology.registry import resolve_topology
from ..workloads import DYNAMIC_METRICS, WORKLOADS, resolve_workload

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_METRICS",
    "KNOWN_METRICS",
    "RESILIENCE_METRICS",
    "SweepSpec",
    "RunSpec",
    "SweepResult",
    "RouteTableCache",
    "format_run_id",
    "record_id",
    "plan_runs",
    "run_sweep",
    "execute_run",
    "resolve_pattern",
    "parse_algorithm_spec",
    "subset_table",
    "write_artifact",
    "load_artifact",
    "figure_grid_spec",
    "fault_grid_spec",
    "dynamic_grid_spec",
    "DYNAMIC_METRICS",
    "sweep_to_figure",
]

#: version stamp of the JSON artifact layout (docs/sweep_schema.md);
#: v2 added the ``faults`` axis and the resilience metrics, v3 the
#: ``workloads`` axis (dynamic open-loop cells with FCT metrics).  The
#: optional ``obs`` section (span aggregates of traced sweeps) is
#: additive and only present when tracing was on, so it needs no bump.
SCHEMA_VERSION = 3

# reusable do-nothing context manager for untraced runs
_NULL_CM = nullcontext()


# ----------------------------------------------------------------------
# Grid specification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepSpec:
    """A declarative sweep grid.

    Every axis entry is a registry spec string: ``algorithms`` are
    algorithm specs, optionally parameterized (``"r-nca-d(map_kind=mod)"``
    passes ``map_kind="mod"`` to the builder — the ablation grids rely
    on this); ``topologies`` are raw XGFT specs or registered family
    specs; ``patterns`` are registered pattern specs.  ``seeds`` is the
    number of seeds per *randomized* algorithm; deterministic and
    single-series schemes (see
    :data:`repro.core.factory.SINGLE_SEED_ALGORITHMS`) are planned with
    seed 0 only.  ``faults`` is the degraded-topology axis: fault spec
    strings per :func:`repro.faults.parse_fault_spec` (``"none"`` keeps
    the topology pristine).  ``metrics`` may name any registered metric
    (:data:`repro.metrics.METRICS`), including third-party ones.

    ``workloads`` (schema v3) is the dynamic open-loop axis: registered
    workload specs (:data:`repro.workloads.WORKLOADS`, e.g.
    ``"poisson(load=0.8)"``).  ``"none"`` plans the classic phase cells
    over ``patterns``; every other entry plans one *dynamic* cell per
    (topology, algorithm, seed, faults) combination — its ``pattern``
    is the placeholder ``none``, it records the fixed FCT/slowdown
    metric set (:data:`repro.workloads.DYNAMIC_METRICS`) instead of
    ``metrics``, and its seed axis only collapses when nothing is
    seeded — trace replay under a deterministic scheme on a pristine
    fabric — since the seed otherwise drives the arrival stream even
    for deterministic schemes.  A dynamic-only sweep may leave
    ``patterns`` empty; patterns combined with an all-dynamic
    workloads axis are rejected (they would silently never run).
    """

    topologies: tuple[str, ...]
    patterns: tuple[str, ...]
    algorithms: tuple[str, ...]
    seeds: int = 1
    metrics: tuple[str, ...] = DEFAULT_METRICS
    engine: str = DEFAULT_ENGINE
    name: str = ""
    faults: tuple[str, ...] = ("none",)
    workloads: tuple[str, ...] = ("none",)

    def __post_init__(self):
        if not self.topologies or not self.algorithms:
            raise ValueError("a sweep needs at least one topology and algorithm")
        if not self.workloads:
            raise ValueError("the workloads axis needs at least one entry ('none')")
        if not self.patterns and any(w == "none" for w in self.workloads):
            raise ValueError(
                "a sweep needs at least one pattern (or an all-dynamic workloads axis)"
            )
        if not self.faults:
            raise ValueError("the faults axis needs at least one entry ('none')")
        if self.seeds < 1:
            raise ValueError("seeds must be >= 1")
        resolve_engine(self.engine)  # fail fast on unknown engine names
        unknown = set(self.metrics) - set(METRICS.names())
        if unknown:
            raise ValueError(
                f"unknown metrics {sorted(unknown)}; known: {', '.join(METRICS.names())}"
            )
        for spec in self.topologies:
            resolve_topology(spec)  # fail fast on malformed topology specs
        for spec in self.algorithms:
            parse_spec(spec)
        for spec in self.faults:
            parse_fault_spec(spec)
        canonical = []
        n0 = None
        for spec in self.workloads:
            if spec != "none":
                name, _ = parse_spec(spec)
                WORKLOADS.get(name)  # fail fast on unknown workload names
                # normalize to the *resolved* identity (sorted params,
                # defaults spelled out) so plan ids, record ids and the
                # baseline gate agree regardless of input spelling; the
                # first topology stands in for num_leaves (the spec is
                # machine-independent)
                if n0 is None:
                    n0 = resolve_topology(self.topologies[0]).num_leaves
                spec = resolve_workload(spec, n0).spec
            canonical.append(spec)
        object.__setattr__(self, "workloads", tuple(canonical))
        if self.patterns and all(w != "none" for w in self.workloads):
            # phase cells are only planned under the "none" workload, so
            # these patterns would silently never run — and a baseline
            # gate over the artifact would stop covering them
            raise ValueError(
                "patterns were given but the workloads axis has no 'none' "
                "entry, so no phase cells would be planned; add 'none' to "
                "workloads or drop the patterns"
            )

    def to_dict(self) -> dict:
        return {
            "topologies": list(self.topologies),
            "patterns": list(self.patterns),
            "algorithms": list(self.algorithms),
            "seeds": self.seeds,
            "metrics": list(self.metrics),
            "engine": self.engine,
            "name": self.name,
            "faults": list(self.faults),
            "workloads": list(self.workloads),
        }

    @staticmethod
    def from_dict(d: dict) -> "SweepSpec":
        return SweepSpec(
            topologies=tuple(d["topologies"]),
            patterns=tuple(d.get("patterns", ())),
            algorithms=tuple(d["algorithms"]),
            seeds=int(d.get("seeds", 1)),
            metrics=tuple(d.get("metrics", DEFAULT_METRICS)),
            engine=d.get("engine", DEFAULT_ENGINE),
            name=d.get("name", ""),
            faults=tuple(d.get("faults", ("none",))),
            workloads=tuple(d.get("workloads", ("none",))),
        )


def record_id(record: dict) -> str:
    """:func:`repro.api.format_run_id` applied to an artifact run record."""
    return format_run_id(
        record["topology"],
        record["pattern"],
        record["algorithm"],
        record["seed"],
        record.get("faults", "none"),
        record.get("workload", "none"),
    )


@dataclass(frozen=True)
class RunSpec:
    """One cell of the grid: a single routed-and-measured scenario."""

    topology: str
    pattern: str
    algorithm: str
    seed: int
    faults: str = "none"
    workload: str = "none"

    @property
    def run_id(self) -> str:
        return format_run_id(
            self.topology, self.pattern, self.algorithm, self.seed,
            self.faults, self.workload,
        )

    @property
    def memo_key(self) -> tuple[str, str, int]:
        """Route tables are shared across patterns, fault scenarios and
        workloads (repair filters the *pristine* table; dynamic cells
        subset the same all-pairs rows), never across these."""
        return (self.topology, self.algorithm, self.seed)

    def scenario(self) -> Scenario:
        """This grid cell as a :class:`repro.api.Scenario`."""
        return Scenario(
            self.topology, self.pattern, self.algorithm, faults=self.faults,
            seed=self.seed, workload=self.workload,
        )


# ----------------------------------------------------------------------
# Deprecated pre-registry entry points
# ----------------------------------------------------------------------
def parse_algorithm_spec(spec: str) -> tuple[str, dict]:
    """Deprecated: use :func:`repro.registry.parse_spec`.

    The algorithm-spec mini-parser grew into the registry-wide spec DSL;
    this shim delegates and warns.
    """
    warnings.warn(
        "repro.experiments.sweep.parse_algorithm_spec is deprecated; "
        "use repro.registry.parse_spec",
        DeprecationWarning,
        stacklevel=2,
    )
    return parse_spec(spec)


def resolve_pattern(name: str, num_leaves: int) -> Pattern:
    """Deprecated: use :func:`repro.patterns.registry.resolve_pattern`.

    Pattern resolution moved out of the sweep engine into the pattern
    registry; this shim delegates and warns.
    """
    warnings.warn(
        "repro.experiments.sweep.resolve_pattern is deprecated; "
        "use repro.patterns.registry.resolve_pattern",
        DeprecationWarning,
        stacklevel=2,
    )
    return _resolve_pattern(name, num_leaves)


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------
def plan_runs(spec: SweepSpec, run_filter: str | None = None) -> tuple[RunSpec, ...]:
    """The grid's cartesian product, memo-key-contiguous.

    Runs sharing a ``(topology, algorithm, seed)`` route table are
    consecutive, so parallel chunking by memo key keeps each table build
    inside one worker.  Deterministic/single-series algorithms collapse
    the seed axis to ``{0}`` on the pristine topology; under a fault
    scenario the seed still varies the *repair* draw, and under a
    *seeded* dynamic workload it seeds the arrival stream, so the full
    seed range is planned in both cases even for deterministic schemes.
    Seed-insensitive workloads (trace replay — ``Workload.seeded`` is
    False) collapse like patterns do: re-simulating an identical stream
    under a deterministic scheme on a pristine fabric is an inert seed.
    Dynamic cells (``workload != "none"``) are planned once per
    (topology, algorithm, seed, faults) with the placeholder pattern
    ``"none"`` — an open-loop workload has no phase-pattern axis.
    ``run_filter`` is an ``fnmatch`` pattern applied to ``run_id``
    (substring match when it has no wildcards).
    """
    workload_seeded: dict[str, bool] = {}
    for topo_spec in spec.topologies:
        topo = resolve_topology(topo_spec)
        for pattern in spec.patterns:
            _resolve_pattern(pattern, topo.num_leaves)  # validate fit
        for workload in spec.workloads:
            if workload != "none":
                # validate fit; seed sensitivity is a property of the
                # workload spec alone, identical across topologies
                workload_seeded[workload] = resolve_workload(
                    workload, topo.num_leaves
                ).seeded
    runs: list[RunSpec] = []
    fault_kinds = {faults: parse_fault_spec(faults).kind for faults in spec.faults}
    for topo_spec in spec.topologies:
        for algorithm in spec.algorithms:
            name, _ = parse_spec(algorithm)
            single = name in SINGLE_SEED_ALGORITHMS
            for seed in range(spec.seeds):
                for faults in spec.faults:
                    inert = single and seed > 0 and fault_kinds[faults] == "none"
                    for workload in spec.workloads:
                        if workload != "none":
                            if inert and not workload_seeded[workload]:
                                continue  # identical stream, scheme and fabric
                            runs.append(
                                RunSpec(topo_spec, "none", algorithm, seed, faults, workload)
                            )
                            continue
                        if inert:
                            continue  # deterministic scheme, pristine fabric
                        for pattern in spec.patterns:
                            runs.append(RunSpec(topo_spec, pattern, algorithm, seed, faults))
    if run_filter:
        glob = run_filter if any(c in run_filter for c in "*?[") else f"*{run_filter}*"
        runs = [r for r in runs if fnmatch(r.run_id, glob)]
    return tuple(runs)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def execute_run(
    run: RunSpec,
    metrics: Sequence[str],
    engine: str = DEFAULT_ENGINE,
    cache: RouteTableCache | None = None,
    config=None,
    _crossbar_memo: dict | None = None,
) -> dict:
    """Execute one grid cell through the facade and return its record."""
    from ..sim.config import PAPER_CONFIG

    result = evaluate_scenario(
        run.scenario(),
        metrics=metrics,
        engine=engine,
        config=config if config is not None else PAPER_CONFIG,
        cache=cache,
        crossbar_memo=_crossbar_memo,
    )
    return result.to_record()


# ----------------------------------------------------------------------
# The sweep driver
# ----------------------------------------------------------------------
@dataclass
class SweepResult:
    """Executed sweep: the artifact's in-memory form."""

    spec: SweepSpec
    runs: list[dict]
    cache_stats: dict = field(default_factory=dict)
    total_wall_time_s: float = 0.0
    #: per-span-name ``{count, total_s, max_s}`` aggregated across every
    #: worker process; empty unless the sweep ran under tracing
    obs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        out = {
            "schema_version": SCHEMA_VERSION,
            "kind": "repro-sweep-results",
            "spec": self.spec.to_dict(),
            "environment": _environment(),
            "cache": dict(self.cache_stats),
            "total_wall_time_s": round(self.total_wall_time_s, 6),
            "runs": self.runs,
        }
        # only traced sweeps carry the key, so untraced artifacts stay
        # byte-identical to the committed schema-v3 baselines
        if self.obs:
            out["obs"] = {"spans": dict(self.obs)}
        return out

    def run_map(self) -> dict[str, dict]:
        return {record_id(r): r for r in self.runs}


def _environment() -> dict:
    from .. import __version__

    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "numpy": np.__version__,
        "repro": __version__,
        "cpu_count": multiprocessing.cpu_count(),
    }


def _execute_group(
    payload: tuple[dict, list[tuple[int, dict]], str | None, bool],
) -> tuple[list, dict, dict]:
    """Worker entry: one memo group = one route-table build, many patterns.

    With ``trace`` set, every run executes under a ``sweep.run`` span
    and the group returns the bounded per-name span aggregate of the
    spans it produced (never the raw span list — a worker's trace can
    be large, and forked children inherit the parent's buffer, so only
    spans recorded *by this group* are aggregated).
    """
    spec_d, indexed_runs, store_root, trace = payload
    spec = SweepSpec.from_dict(spec_d)
    cache = RouteTableCache(store=store_root)
    crossbar_memo: dict = {}
    base_spans = 0
    if trace:
        # re-arming per-process infrastructure, not sharing state:
        # spawn-started workers don't inherit the parent's tracer flag
        TRACER.enable()  # repro: noqa[REP030]
        base_spans = len(TRACER.spans())
    out = []
    for index, run_d in indexed_runs:
        run = RunSpec(**run_d)
        with TRACER.span("sweep.run", run_id=run.run_id) if trace else _NULL_CM:
            record = execute_run(
                run, spec.metrics, spec.engine, cache, _crossbar_memo=crossbar_memo
            )
        out.append((index, record))
    obs = aggregate_spans(TRACER.spans()[base_spans:]) if trace else {}
    return out, cache.stats(), obs


def run_sweep(
    spec: SweepSpec,
    jobs: int = 1,
    run_filter: str | None = None,
    store: str | Path | None = None,
) -> SweepResult:
    """Execute a sweep, serial (``jobs=1``) or process-parallel.

    Parallel execution partitions the plan by memo key, so each
    ``(topology, algorithm, seed)`` route table is built exactly once in
    exactly one worker regardless of how many patterns consume it.
    Results are deterministic and ordered by the plan, independent of
    ``jobs``.

    ``store`` names an artifact-store root (``repro sweep --store``):
    every worker's table cache becomes store-backed, so the sweep's
    all-pairs tables are loaded from disk when already built and
    persisted otherwise — sweep outputs double as ``repro serve``
    entries, and reruns skip the table builds entirely.
    """
    t0 = time.perf_counter()
    runs = plan_runs(spec, run_filter)
    if not runs:
        return SweepResult(spec, [], {"table_builds": 0, "table_hits": 0}, 0.0)

    store_root = str(store) if store is not None else None
    trace = _obs_active() and TRACER.enabled
    groups: dict[tuple, list[tuple[int, dict]]] = {}
    for index, run in enumerate(runs):
        groups.setdefault(run.memo_key, []).append((index, asdict(run)))
    payloads = [
        (spec.to_dict(), indexed, store_root, trace) for indexed in groups.values()
    ]

    records: list[dict | None] = [None] * len(runs)
    stats = {"table_builds": 0, "table_hits": 0}
    if store_root is not None:
        stats["store_hits"] = 0
        stats["store_puts"] = 0
    obs_agg: dict = {}
    jobs = max(1, min(jobs, len(payloads)))
    if jobs == 1:
        results = map(_execute_group, payloads)
    else:
        pool = multiprocessing.Pool(processes=jobs)
        try:
            results = pool.imap_unordered(_execute_group, payloads)
            results = list(results)
        finally:
            pool.close()
            pool.join()
    for group_records, group_stats, group_obs in results:
        for index, record in group_records:
            records[index] = record
        for key in stats:
            stats[key] += group_stats[key]
        merge_span_aggregates(obs_agg, group_obs)
    assert all(r is not None for r in records)
    return SweepResult(spec, records, stats, time.perf_counter() - t0, obs_agg)


# ----------------------------------------------------------------------
# Artifact I/O
# ----------------------------------------------------------------------
def write_artifact(result: SweepResult, path: str | Path) -> Path:
    """Serialize a sweep to the schema-versioned JSON artifact."""
    path = Path(path)
    path.write_text(json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n")
    return path


def load_artifact(path: str | Path) -> dict:
    """Load and schema-check a sweep artifact."""
    data = json.loads(Path(path).read_text())
    if data.get("kind") != "repro-sweep-results":
        raise ValueError(f"{path}: not a sweep artifact")
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: artifact schema v{version} != supported v{SCHEMA_VERSION}"
        )
    return data


# ----------------------------------------------------------------------
# Figure grids (the paper's evaluation as sweep specs)
# ----------------------------------------------------------------------
def _slimming_topologies(w2_values: Iterable[int]) -> tuple[str, ...]:
    return tuple(slimmed_two_level(16, 16, w2).spec() for w2 in w2_values)


def figure_grid_spec(
    figure: str,
    app: str | None = None,
    w2_values: Sequence[int] | None = None,
    seeds: int = 5,
) -> SweepSpec:
    """The paper's Fig. 2/4/5 evaluation grids as :class:`SweepSpec` s.

    ``fig2``/``fig5`` sweep slowdown over the progressive-slimming
    topologies for one application; ``fig4`` sweeps the all-pairs
    routes-per-NCA census.
    """
    if w2_values is None:
        w2_values = tuple(range(16, 0, -1))
    topologies = _slimming_topologies(w2_values)
    if figure == "fig2":
        if app is None:
            raise ValueError("fig2 needs an application")
        return SweepSpec(
            topologies=topologies,
            patterns=(app,),
            algorithms=("random", "s-mod-k", "d-mod-k", "colored"),
            seeds=seeds,
            metrics=("slowdown",),
            name=f"fig2-{app}",
        )
    if figure == "fig5":
        if app is None:
            raise ValueError("fig5 needs an application")
        return SweepSpec(
            topologies=topologies,
            patterns=(app,),
            algorithms=("s-mod-k", "d-mod-k", "colored", "r-nca-u", "r-nca-d", "random"),
            seeds=seeds,
            metrics=("slowdown",),
            name=f"fig5-{app}",
        )
    if figure == "fig4":
        return SweepSpec(
            topologies=topologies,
            patterns=("all-pairs",),
            algorithms=("s-mod-k", "d-mod-k", "random", "r-nca-u", "r-nca-d"),
            seeds=seeds,
            metrics=("routes_per_nca",),
            name="fig4",
        )
    raise ValueError(f"unknown figure {figure!r} (expected fig2, fig4 or fig5)")


def fault_grid_spec(
    topology: str,
    pattern: str,
    algorithms: Sequence[str],
    rates: Sequence[float],
    kind: str = "links",
    seeds: int = 3,
    engine: str = DEFAULT_ENGINE,
    metrics: Sequence[str] | None = None,
) -> SweepSpec:
    """A failure-rate resilience grid (Fig.-2-style curves vs fault rate).

    ``rates`` are failure rates over cables (``kind="links"``) or inner
    switches (``kind="switches"``); rate 0 maps to the pristine
    ``"none"`` scenario.  All algorithms and routing seeds of a rate row
    face the same fault draw; the ``seeds`` axis varies routing and
    repair randomness only (for deterministic schemes, repair randomness
    alone — their pristine rows stay single-seed).
    """
    if kind not in ("links", "switches"):
        raise ValueError(f"unknown fault kind {kind!r} (expected links or switches)")
    if not rates:
        raise ValueError("need at least one failure rate")
    faults = tuple(
        "none" if rate == 0 else f"{kind}:rate={rate:g}" for rate in rates
    )
    if len(set(faults)) != len(faults):
        raise ValueError(f"duplicate failure rates in {list(rates)}")
    if metrics is None:
        metrics = ("max_link_load", "slowdown") + RESILIENCE_METRICS
    return SweepSpec(
        topologies=(topology,),
        patterns=(pattern,),
        algorithms=tuple(algorithms),
        seeds=seeds,
        metrics=tuple(metrics),
        engine=engine,
        name=f"faults-{kind}-{pattern}",
        faults=faults,
    )


def dynamic_grid_spec(
    topology: str,
    workloads: Sequence[str],
    algorithms: Sequence[str],
    seeds: int = 1,
    engine: str = DEFAULT_ENGINE,
    faults: Sequence[str] = ("none",),
    name: str = "",
) -> SweepSpec:
    """A dynamic-only grid: load-vs-FCT curves per routing algorithm.

    ``workloads`` are registered workload specs (the ``repro dynamic``
    CLI builds a ``poisson(load=...)`` ladder from ``--loads``); the
    grid has no phase patterns, so every cell is an open-loop run
    recording :data:`repro.workloads.DYNAMIC_METRICS`.
    """
    if not workloads:
        raise ValueError("need at least one workload spec")
    if any(w == "none" for w in workloads):
        raise ValueError("a dynamic grid takes real workload specs, not 'none'")
    return SweepSpec(
        topologies=(topology,),
        patterns=(),
        algorithms=tuple(algorithms),
        seeds=seeds,
        engine=engine,
        faults=tuple(faults),
        workloads=tuple(workloads),
        name=name or "dynamic",
    )


def sweep_to_figure(result: SweepResult):
    """Adapt a fig2/fig5-shaped sweep into a :class:`FigureSweep`.

    Groups the ``slowdown`` metric by algorithm and w2.  Single-seed
    algorithms carry plain floats, randomized ones :class:`BoxStats`
    over the seeds — even a one-seed box, matching the original figure
    harness (bench assertions read ``.median`` off randomized series).
    """
    from .figures import FigureSweep, SweepSeries
    from .stats import box_stats

    w2_of = {spec: resolve_topology(spec).w[-1] for spec in result.spec.topologies}
    samples: dict[str, dict[int, list[float]]] = {}
    for record in result.runs:
        w2 = w2_of[record["topology"]]
        samples.setdefault(record["algorithm"], {}).setdefault(w2, []).append(
            record["metrics"]["slowdown"]
        )
    series = []
    for algorithm in result.spec.algorithms:
        name, _ = parse_spec(algorithm)
        single = name in SINGLE_SEED_ALGORITHMS
        per_w2 = samples.get(algorithm, {})
        values = {
            w2: (vals[0] if single else box_stats(vals)) for w2, vals in per_w2.items()
        }
        series.append(SweepSeries(algorithm, values))
    return FigureSweep(
        result.spec.patterns[0],
        tuple(sorted(w2_of.values(), reverse=True)),
        tuple(series),
    )
