"""Slowdown-vs-Full-Crossbar measurement (the paper's y-axis).

"We have scaled the reported times against the time employed by a single
ideal single-stage crossbar network connecting all the nodes" (Sec.
VI-B).  The helpers here run a pattern on an XGFT under a routing scheme
and on the crossbar, and report the ratio.  ``engine`` names any
registered backend (:data:`repro.sim.engines.ENGINES`):

* fluid-kind engines (``"fluid-vec"`` — the vectorized default — and
  the scalar ``"fluid"`` reference) run the bulk-synchronous phase
  model on the max-min fluid allocation (the sweep workhorse);
* ``engine="replay"`` runs a full trace replay through the
  Dimemas-substitute engine (slower, models the causal structure;
  cross-checked against the phase model by the integration tests).
"""

from __future__ import annotations

from ..core.factory import make_algorithm
from ..patterns.base import Pattern
from ..sim.config import NetworkConfig, PAPER_CONFIG
from ..sim.engines import DEFAULT_ENGINE, is_fluid_engine
from ..sim.network import crossbar_pattern_time, simulate_pattern_fluid
from ..topology import XGFT

__all__ = ["slowdown", "crossbar_time", "Engine"]

#: engine names are registry keys now; kept as ``str`` for backwards
#: compatibility with the pre-registry ``Literal`` alias
Engine = str


def crossbar_time(
    pattern: Pattern,
    num_leaves: int,
    config: NetworkConfig = PAPER_CONFIG,
    engine: Engine = DEFAULT_ENGINE,
) -> float:
    """Full-Crossbar reference time for a pattern."""
    if is_fluid_engine(engine):
        return crossbar_pattern_time(pattern, num_leaves, config, engine=engine)
    from ..dimemas import pattern_trace, replay_on_crossbar

    return replay_on_crossbar(pattern_trace(pattern), num_leaves, config).total_time


def slowdown(
    topo: XGFT,
    algorithm_name: str,
    pattern: Pattern,
    seed: int = 0,
    config: NetworkConfig = PAPER_CONFIG,
    engine: Engine = DEFAULT_ENGINE,
    reference_time: float | None = None,
    **algorithm_kwargs,
) -> float:
    """Slowdown of ``pattern`` on ``topo`` under an algorithm vs crossbar.

    ``reference_time`` short-circuits the crossbar run when the caller
    sweeps many topologies/algorithms over one pattern.
    """
    algorithm = make_algorithm(algorithm_name, topo, seed=seed, **algorithm_kwargs)
    if is_fluid_engine(engine):
        t_net = simulate_pattern_fluid(topo, algorithm, pattern, config, engine=engine)
    else:
        from ..dimemas import pattern_trace, replay_on_xgft

        # the replay network asks for routes pair by pair, so pattern-aware
        # schemes must see the pattern up front (with the default
        # sequential mapping rank ids equal leaf ids)
        algorithm.prepare(
            sorted({(s, d) for s, d in pattern.pairs() if s != d})
        )
        t_net = replay_on_xgft(pattern_trace(pattern), topo, algorithm, config).total_time
    t_ref = (
        reference_time
        if reference_time is not None
        else crossbar_time(pattern, topo.num_leaves, config, engine)
    )
    if t_ref <= 0:
        # a degenerate pattern whose flows all move zero network bytes
        # (self-pairs, zero sizes) drains instantly on both fabrics
        # (t_net == t_ref == 0): slowdown is 1.0 by convention — no
        # bytes moved, so no contention was added.  A pattern with no
        # flows at all, or a zero reference against a positive network
        # time, is still a caller error, never a silent inf/nan
        if t_net <= 0 and any(phase.flows for phase in pattern.phases):
            return 1.0
        raise ValueError("reference time must be positive (empty pattern?)")
    return t_net / t_ref
