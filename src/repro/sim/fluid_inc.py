"""Incremental max-min fluid engine (component-local progressive filling).

:class:`IncFluidSimulator` computes the same max-min fair allocation as
the scalar :class:`repro.sim.fluid.FluidSimulator` and the vectorized
:class:`repro.sim.fluid_vec.VecFluidSimulator`, but treats each
arrival/completion batch as a *local* perturbation: instead of
re-running progressive filling over the whole active set, it identifies
the **bottleneck dependency component** of the event — the links whose
frozen water level can actually move — refills only the flows inside
it, and reuses the frozen levels everywhere else.

The machinery rests on the classic bottleneck characterization of
max-min fairness: an allocation is *the* (unique) max-min allocation
iff it is feasible and every flow has a **certificate link** on its
path that is saturated and on which the flow's rate is maximal among
the link's users.  The engine maintains, per link, the committed
**water level** ``W(l)`` — the maximum user rate if the link is
saturated, ``+inf`` otherwise — and grows the component as the at-level
fixpoint closure of the event's seed links:

1. *Seeds*: the links of every flow that arrived or completed since the
   last refill (same-timestamp mutations accumulate into one epoch — a
   whole Poisson burst, or a simultaneous completion group, costs one
   refill).
2. *Closure*: a flow joins the component iff it crosses a component
   link ``l`` at that link's level (``rate >= W(l) - eps``); a joining
   flow contributes all its links.  Iterate to a fixpoint.
3. *Local fill*: run the parallel progressive-filling kernel over the
   inside flows only, against residual capacities (the outside users of
   component links are fixed background consumption).
4. *Verify*: recompute saturation and max-user levels on the component
   links (background included) and check the bottleneck certificate of
   every refilled flow.  Certificates of *outside* flows hold
   structurally: an outside flow's certificate link is, by the closure
   rule, never a component link (the flow sits at that link's level and
   would have joined), so no inside flow crosses it and its balance is
   untouched.
5. *Commit, expand, or fall back*: on success, write the new rates and
   water levels (restamping only the flows whose rate actually moved —
   unchanged flows keep their live completion-heap entry).  A
   certificate failure means a *background* flow ended up above the
   component's new level on some shared link — the event lowered a
   water level below a bystander the one-sided at-level closure could
   not see coming.  Those blockers are identified exactly (outside
   users above the inside maximum on a failed flow's link), pulled into
   the component, and the closure/fill retried, up to
   ``_MAX_EXPANSIONS`` rounds.  Only when expansion is exhausted or the
   component grows past the budget does the engine fall back to a full
   from-scratch refill — the exactness escape hatch.

Flow bytes drain **lazily**: a flow's remaining volume is materialized
only when its rate changes or it completes, and completions pop from a
generation-stamped lazy heap — so an event that refills a 50-link
component does O(component) work even with 10^5 concurrent flows.

The public surface mirrors the other fluid engines (``add_flow`` /
``add_flows`` / ``rates`` / ``advance_to`` /
``advance_to_next_completion`` / ``run_until_idle`` / ``results`` /
``telemetry``); it is registered as ``fluid-vec-inc``.  Telemetry adds
``partial_refills`` / ``full_refills`` / ``cert_fallbacks``,
cumulative ``links_touched`` / ``flows_touched`` (work actually done)
against ``links_active`` / ``flows_active`` (what full refills would
have done), and ``component_size_hwm`` — see ``docs/performance.md``
for the algorithm, the exactness argument and the telemetry contract.
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np

from ..obs import active as _obs_active
from ..obs.trace import TRACER
from .fluid import FlowResult, _EPS

__all__ = ["IncFluidSimulator"]

#: a flow is "at level" on a link when its rate reaches the link's
#: committed water level within this relative margin — generous, so
#: float noise never hides a dependency (too-eager joining only grows
#: the component; too-lazy joining would be a correctness bug)
_JOIN_REL = 1e-6

#: a component link counts as saturated when its residual capacity is
#: below this fraction of the raw capacity — progressive filling leaves
#: ~1e-16 relative residue on true bottlenecks, so this over-marks,
#: which is the safe direction (at-level flows join more eagerly)
_SAT_REL = 1e-9

#: certificate slack: a refilled flow passes when its rate reaches the
#: max-user level of a saturated path link within this relative margin
_CERT_REL = 1e-12

#: certificate-failure recovery: how many times a component may pull in
#: its blocking background flows and retry before giving up and running
#: a full refill (each retry is still budget-bounded by ``_closure``)
_MAX_EXPANSIONS = 4


class IncFluidSimulator:
    """Incremental max-min fluid simulation over a fixed link set.

    Drop-in replacement for the other fluid engines (same constructor,
    same public methods, same semantics — including zero-size flows
    completing immediately at their start time), backed by
    component-local refills, lazy byte draining and a generation-stamped
    completion heap.
    """

    def __init__(self, num_links: int, capacity: float | np.ndarray):
        if num_links <= 0:
            raise ValueError("need at least one link")
        cap = np.asarray(capacity, dtype=np.float64)
        if cap.ndim == 0:
            cap = np.full(num_links, float(cap))
        if cap.shape != (num_links,):
            raise ValueError(f"capacity must be scalar or shape ({num_links},)")
        if (cap <= 0).any():
            raise ValueError("capacities must be positive")
        self.capacity = cap
        self.num_links = num_links
        self.now = 0.0
        self._results: list[FlowResult] = []
        self._obs_on = _obs_active()

        # telemetry (see telemetry())
        self.recomputes = 0
        self.fill_rounds = 0
        self.frozen_links = 0
        self.compactions = 0
        self.active_flows_hwm = 0
        self.partial_refills = 0
        self.full_refills = 0
        self.cert_fallbacks = 0
        self.links_touched = 0
        self.flows_touched = 0
        self.links_active = 0
        self.flows_active = 0
        self.component_size_hwm = 0
        self.mutation_events = 0

        # struct-of-arrays flow slots (append-only, amortized doubling)
        n0 = 64
        self._cap_slots = n0
        self._n = 0
        self._n_active = 0
        self._nnz_active = 0
        self._fid = np.empty(n0, dtype=np.int64)
        self._size = np.empty(n0, dtype=np.float64)
        self._rem = np.empty(n0, dtype=np.float64)  # bytes at _sync
        self._rate = np.empty(n0, dtype=np.float64)
        self._sync = np.empty(n0, dtype=np.float64)  # last materialization
        self._start = np.empty(n0, dtype=np.float64)
        self._gen = np.zeros(n0, dtype=np.int64)
        self._act = np.zeros(n0, dtype=bool)
        self._id_to_slot: dict[int, int] = {}
        # per-slot link rows, padded with the virtual link num_links
        self._lm = np.full((n0, 1), num_links, dtype=np.int64)
        # per-slot python link tuples (fast closure scans)
        self._links: list[tuple[int, ...]] = []

        # per-link state
        self._users: list[set[int]] = [set() for _ in range(num_links)]
        self._n_links_used = 0
        # committed water levels: max user rate if saturated, else +inf
        self._W = np.full(num_links, np.inf, dtype=np.float64)

        # lazy completion heap: (finish, slot, gen, slack)
        self._heap: list[tuple[float, int, int, float]] = []

        # dirty state accumulated since the last refill (the epoch)
        self._dirty_links: set[int] = set()
        self._dirty_slots: list[int] = []

    # ------------------------------------------------------------------
    # Flow management
    # ------------------------------------------------------------------
    def add_flow(self, flow_id: int, links: Sequence[int], size: float) -> None:
        """Inject a single flow at the current time (scalar-compatible)."""
        link_arr = np.asarray([int(l) for l in links], dtype=np.int64)
        self.add_flows(
            np.asarray([int(flow_id)], dtype=np.int64),
            np.asarray([float(size)], dtype=np.float64),
            np.zeros(len(link_arr), dtype=np.int64),
            link_arr,
        )

    def add_flows(
        self,
        flow_ids: np.ndarray | Sequence[int],
        sizes: np.ndarray | Sequence[float],
        coo_flow: np.ndarray,
        coo_link: np.ndarray,
    ) -> None:
        """Inject a batch of flows at the current time.

        Same contract as :meth:`VecFluidSimulator.add_flows
        <repro.sim.fluid_vec.VecFluidSimulator.add_flows>`.  The batch
        joins the current epoch: however many batches and completion
        groups land at one instant, the next rates query pays a single
        (component-local when possible) refill.
        """
        flow_ids = np.asarray(flow_ids, dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.float64)
        coo_flow = np.asarray(coo_flow, dtype=np.int64)
        coo_link = np.asarray(coo_link, dtype=np.int64)
        if flow_ids.ndim != 1 or sizes.shape != flow_ids.shape:
            raise ValueError("flow_ids and sizes must be parallel 1-d arrays")
        if coo_flow.shape != coo_link.shape:
            raise ValueError("coo_flow and coo_link must be parallel 1-d arrays")
        if len(flow_ids) == 0:
            return
        if (sizes < 0).any():
            raise ValueError("flow size must be non-negative")
        if len(np.unique(flow_ids)) != len(flow_ids):
            raise ValueError("duplicate flow ids within the batch")
        for fid in flow_ids.tolist():
            if fid in self._id_to_slot:
                raise ValueError(f"flow id {fid} already active")
        if len(coo_link) and (coo_link.min() < 0 or coo_link.max() >= self.num_links):
            bad = coo_link[(coo_link < 0) | (coo_link >= self.num_links)][0]
            raise ValueError(f"link {int(bad)} out of range")
        if len(coo_flow) and (coo_flow.min() < 0 or coo_flow.max() >= len(flow_ids)):
            raise ValueError("coo_flow indexes outside the batch")
        links_per_flow = np.bincount(coo_flow, minlength=len(flow_ids))
        if (links_per_flow == 0).any():
            raise ValueError("a flow must traverse at least one link")
        # collapse repeated (flow, link) entries like the other engines
        key = coo_flow * np.int64(self.num_links) + coo_link
        uniq = np.unique(key)
        coo_flow = uniq // self.num_links
        coo_link = uniq % self.num_links

        instant = sizes == 0.0
        for fid in flow_ids[instant].tolist():
            self._results.append(FlowResult(int(fid), self.now, self.now, 0.0))
        if instant.all():
            return
        keep = ~instant
        kept_ids = flow_ids[keep].tolist()
        kept_sizes = sizes[keep]
        # remap entries onto the kept subset (uniq left them flow-sorted)
        new_index = np.cumsum(keep) - 1
        entry_keep = keep[coo_flow]
        e_f = new_index[coo_flow[entry_keep]]
        e_l = coo_link[entry_keep]
        n_new = len(kept_ids)

        self.mutation_events += 1
        base = self._n
        self._grow(n_new, int(links_per_flow.max()))
        sl = np.arange(base, base + n_new, dtype=np.int64)
        self._fid[sl] = np.asarray(kept_ids, dtype=np.int64)
        self._size[sl] = kept_sizes
        self._rem[sl] = kept_sizes
        self._rate[sl] = 0.0
        self._sync[sl] = self.now
        self._start[sl] = self.now
        self._act[sl] = True
        self._n = base + n_new
        self._n_active += n_new
        # scatter link rows (entries are flow-sorted after np.unique)
        counts = np.bincount(e_f, minlength=n_new)
        starts = np.cumsum(counts) - counts
        cols = np.arange(len(e_f), dtype=np.int64) - np.repeat(starts, counts)
        self._lm[sl[e_f], cols] = e_l
        bounds = np.cumsum(counts)[:-1]
        users = self._users
        dirty = self._dirty_links
        for i, (fid, row) in enumerate(zip(kept_ids, np.split(e_l, bounds))):
            s = base + i
            self._id_to_slot[fid] = s
            tup = tuple(row.tolist())
            self._links.append(tup)
            self._nnz_active += len(tup)
            for l in tup:
                u = users[l]
                if not u:
                    self._n_links_used += 1
                u.add(s)
                dirty.add(l)
            self._dirty_slots.append(s)
        if self._n_active > self.active_flows_hwm:
            self.active_flows_hwm = self._n_active

    def _grow(self, n_new: int, batch_width: int) -> None:
        """Make room for ``n_new`` slots and ``batch_width`` link columns."""
        need = self._n + n_new
        cap = self._cap_slots
        if need > cap:
            while cap < need:
                cap *= 2
            for name in ("_fid", "_size", "_rem", "_rate", "_sync", "_start"):
                old = getattr(self, name)
                new = np.empty(cap, dtype=old.dtype)
                new[: self._n] = old[: self._n]
                setattr(self, name, new)
            gen = np.zeros(cap, dtype=np.int64)
            gen[: self._n] = self._gen[: self._n]
            self._gen = gen
            act = np.zeros(cap, dtype=bool)
            act[: self._n] = self._act[: self._n]
            self._act = act
            lm = np.full((cap, self._lm.shape[1]), self.num_links, dtype=np.int64)
            lm[: self._n] = self._lm[: self._n]
            self._lm = lm
            self._cap_slots = cap
        if batch_width > self._lm.shape[1]:
            lm = np.full(
                (self._cap_slots, batch_width), self.num_links, dtype=np.int64
            )
            lm[:, : self._lm.shape[1]] = self._lm
            self._lm = lm

    @property
    def active_flows(self) -> int:
        return self._n_active

    @property
    def results(self) -> list[FlowResult]:
        """Completed flows, in completion order."""
        return self._results

    # ------------------------------------------------------------------
    # Refill orchestration
    # ------------------------------------------------------------------
    def _ensure_rates(self) -> None:
        if self._dirty_links or self._dirty_slots:
            self._refill()

    def _refill(self) -> None:
        if self._n_active == 0:
            # everything drained: the dirty links are empty, hence open
            if self._dirty_links:
                self._W[list(self._dirty_links)] = np.inf
            self._dirty_links.clear()
            self._dirty_slots.clear()
            return
        self.recomputes += 1
        self.links_active += self._n_links_used
        self.flows_active += self._n_active
        if self._obs_on and TRACER.enabled:
            with TRACER.span("fluid.fill", flows=self._n_active) as span:
                mode = self._refill_inner()
                span.set("mode", mode)
        else:
            self._refill_inner()
        self._dirty_links.clear()
        self._dirty_slots.clear()

    def _refill_inner(self) -> str:
        act = self._act
        comp_flows = {s for s in self._dirty_slots if act[s]}
        comp_links = set(self._dirty_links)
        ok = self._closure(comp_flows, comp_links, list(comp_links))
        attempts = 0
        cert_failed = False
        while ok:
            out = self._try_partial(comp_flows, comp_links)
            if out is True:
                self.partial_refills += 1
                # count the links the fill actually processed: a link
                # whose last user departed is in the component only for
                # its O(1) level reset, and counting it could push
                # links_touched past the full-refill-equivalent
                users = self._users
                self.links_touched += sum(1 for l in comp_links if users[l])
                self.flows_touched += len(comp_flows)
                if len(comp_links) > self.component_size_hwm:
                    self.component_size_hwm = len(comp_links)
                return "partial"
            cert_failed = True
            attempts += 1
            if not out or attempts >= _MAX_EXPANSIONS:
                break
            # pull the blocking background flows in and re-run the
            # closure from their links only (growth is monotone)
            scan: list[int] = []
            links = self._links
            for s in out:
                comp_flows.add(s)
                for l in links[s]:
                    if l not in comp_links:
                        comp_links.add(l)
                        scan.append(l)
            ok = self._closure(comp_flows, comp_links, scan)
        if cert_failed:
            self.cert_fallbacks += 1
        self._full_refill()
        self.full_refills += 1
        self.links_touched += self._n_links_used
        self.flows_touched += self._n_active
        return "full"

    def _closure(
        self,
        comp_flows: set[int],
        comp_links: set[int],
        scan: list[int],
    ) -> bool:
        """Grow ``(comp_flows, comp_links)`` in place to the at-level
        fixpoint, scanning from the links in ``scan``.

        Returns ``False`` when the component grows past the point where
        a local fill stops being cheaper than a full one (the budget
        abort) — the sets are then partially grown and must be
        discarded.
        """
        W = self._W
        rate = self._rate
        users = self._users
        links = self._links
        flow_cap = max(64, self._n_active // 2)
        ops_budget = max(1024, self._nnz_active)
        ops = 0
        inf = np.inf
        while scan:
            l = scan.pop()
            w = float(W[l])
            if w == inf:
                continue  # open links have no at-level users
            u = users[l]
            if not u:
                continue
            thr = w - _JOIN_REL * w - 1e-12
            ops += len(u)
            for s in u:
                if s in comp_flows or rate[s] < thr:
                    continue
                comp_flows.add(s)
                for l2 in links[s]:
                    if l2 not in comp_links:
                        comp_links.add(l2)
                        scan.append(l2)
            if ops > ops_budget or len(comp_flows) > flow_cap:
                return False
        return True

    def _try_partial(self, ins_set: set[int], cl_set: set[int]) -> bool | set[int]:
        """Fill the component locally; commit iff the certificates hold.

        Returns ``True`` on commit.  On a certificate failure it returns
        the set of *blocking* background slots — outside flows sitting
        above the component's new inside maximum on a failed flow's
        saturated link (the exact reason the certificate failed) — for
        the caller to pull in and retry; an empty set means no blocker
        was identified and a full refill is the only recovery.
        """
        nl = self.num_links
        cl = np.fromiter(cl_set, np.int64, len(cl_set))
        cl.sort()
        # background: outside users of component links are fixed
        # consumption, subtracted from capacity before the local fill
        inside = np.zeros(self._cap_slots, dtype=bool)
        ins = np.fromiter(ins_set, np.int64, len(ins_set)) if ins_set else (
            np.empty(0, dtype=np.int64)
        )
        ins.sort()
        inside[ins] = True
        rate = self._rate
        users = self._users
        k = len(cl)
        bg_sum = np.zeros(k, dtype=np.float64)
        bg_max = np.zeros(k, dtype=np.float64)
        for i, l in enumerate(cl.tolist()):
            ssum = 0.0
            smax = 0.0
            for s in users[l]:
                if not inside[s]:
                    r = rate[s]
                    ssum += r
                    if r > smax:
                        smax = r
            bg_sum[i] = ssum
            bg_max[i] = smax
        cap_vec = self.capacity.copy()
        cap_vec[cl] -= bg_sum
        np.maximum(cap_vec, 0.0, out=cap_vec)
        if len(ins) == 0:
            # departure-only component with no at-level survivors: the
            # links merely gained slack; refresh their levels in place
            resid = cap_vec[cl]
            sat = resid <= _SAT_REL * self.capacity[cl]
            has_bg = bg_max > 0.0
            self._W[cl] = np.where(sat & has_bg, bg_max, np.inf)
            return True
        # the fill consumes its capacity vector in place — keep cap_vec
        # pristine for the saturation audit below
        rates_new, e_f, e_l = self._fill_subset(ins, cap_vec.copy())
        entry_rate = rates_new[e_f]
        cons = np.bincount(e_l, weights=entry_rate, minlength=nl)
        maxu = np.zeros(nl, dtype=np.float64)
        np.maximum.at(maxu, e_l, entry_rate)
        resid_cl = cap_vec[cl] - cons[cl]
        sat_cl = resid_cl <= _SAT_REL * self.capacity[cl]
        maxu_cl = np.maximum(maxu[cl], bg_max)
        # bottleneck certificates for every refilled flow: a saturated
        # path link where the flow's rate is (within slack) maximal
        sat_ext = np.zeros(nl + 1, dtype=bool)
        sat_ext[cl] = sat_cl
        mx_ext = np.zeros(nl + 1, dtype=np.float64)
        mx_ext[cl] = maxu_cl
        lm = self._lm[ins]
        ok = (
            sat_ext[lm] & (rates_new[:, None] >= mx_ext[lm] * (1.0 - _CERT_REL) - _EPS)
        ).any(axis=1)
        if not ok.all():
            # identify the blockers: on the failed flows' links, the
            # background users strictly above the inside maximum (they
            # are what pushed mx_ext past the refilled rates)
            bad = lm[~ok].ravel()
            bad_links = np.unique(bad[bad < nl])
            extra: set[int] = set()
            for l in bad_links.tolist():
                lvl = maxu[l]
                if bg_max[int(np.searchsorted(cl, l))] <= lvl:
                    continue  # an inside flow is maximal here; not l
                for s in users[l]:
                    if not inside[s] and rate[s] > lvl:
                        extra.add(s)
            return extra
        self._W[cl] = np.where(sat_cl, maxu_cl, np.inf)
        self._commit(ins, rates_new)
        return True

    def _full_refill(self) -> None:
        slots = np.nonzero(self._act[: self._n])[0]
        rates_new, e_f, e_l = self._fill_subset(slots, self.capacity.copy())
        entry_rate = rates_new[e_f]
        nl = self.num_links
        cons = np.bincount(e_l, weights=entry_rate, minlength=nl)
        maxu = np.zeros(nl, dtype=np.float64)
        np.maximum.at(maxu, e_l, entry_rate)
        counts = np.bincount(e_l, minlength=nl)
        sat = (self.capacity - cons <= _SAT_REL * self.capacity) & (counts > 0)
        self._W = np.where(sat, maxu, np.inf)
        self._commit(slots, rates_new)

    def _fill_subset(
        self, slots: np.ndarray, remaining_cap: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Parallel progressive filling of ``slots`` against ``remaining_cap``.

        Same kernel as :meth:`VecFluidSimulator._fill_rates` (every
        locally minimal link freezes per round — exact by share
        monotonicity), restricted to a slot subset and an arbitrary
        (residual) capacity vector.  Returns ``(rates, e_f, e_l)`` with
        ``e_f`` indexing into ``slots``.
        """
        n_act = len(slots)
        num_links = self.num_links
        inf = np.inf
        lm = self._lm[slots]
        width = lm.shape[1]
        flat = lm.ravel()
        real = flat < num_links
        e_l = flat[real]
        e_f = np.repeat(np.arange(n_act, dtype=np.int64), width)[real]
        lm0, e_f0, e_l0 = lm, e_f, e_l

        counts = np.bincount(e_l, minlength=num_links).astype(np.float64)
        shares_ext = np.full(num_links + 1, inf, dtype=np.float64)
        shares = shares_ext[:num_links]
        np.divide(remaining_cap, counts, out=shares, where=counts > 0.0)

        rate_c = np.zeros(n_act, dtype=np.float64)
        mbuf = np.empty(n_act, dtype=np.float64)
        unfrozen_full = np.ones(n_act, dtype=bool)
        orig = np.arange(n_act, dtype=np.int64)
        unfrozen = np.ones(n_act, dtype=bool)
        blocked = np.empty(num_links + 1, dtype=bool)
        n_unfrozen = n_act
        last_compact = n_act
        rounds = frozen_links = compactions = 0
        obs_on = self._obs_on
        while n_unfrozen:
            m = shares_ext[lm].min(axis=1)
            m[~unfrozen] = inf
            mbuf[orig] = m
            blocker = mbuf[e_f] < shares[e_l] - _EPS
            blocked[:] = False
            blocked[num_links] = True
            blocked[e_l[blocker]] = True
            hit = ~blocked[lm].all(axis=1)
            hit &= unfrozen
            if not hit.any():  # pragma: no cover - defensive
                break
            rounds += 1
            if obs_on:
                frozen_links += int((~blocked[:num_links] & (counts > 0.0)).sum())
            np.maximum(m, 0.0, out=m)
            frozen_now = orig[hit]
            rate_c[frozen_now] = m[hit]
            unfrozen_full[frozen_now] = False
            unfrozen &= ~hit
            n_unfrozen -= int(hit.sum())
            flat = lm[hit].ravel()
            weights = np.repeat(m[hit], lm.shape[1])
            real = flat < num_links
            flat = flat[real]
            counts -= np.bincount(flat, minlength=num_links)
            remaining_cap -= np.bincount(
                flat, weights=weights[real], minlength=num_links
            )
            np.maximum(remaining_cap, 0.0, out=remaining_cap)
            shares[:] = inf
            np.divide(remaining_cap, counts, out=shares, where=counts > 0.0)
            if n_unfrozen and n_unfrozen <= last_compact // 2:
                keep = unfrozen_full[e_f]
                e_f, e_l = e_f[keep], e_l[keep]
                lm = lm[unfrozen]
                orig = orig[unfrozen]
                unfrozen = np.ones(n_unfrozen, dtype=bool)
                last_compact = n_unfrozen
                compactions += 1
        if obs_on:
            self.fill_rounds += rounds
            self.frozen_links += frozen_links
            self.compactions += compactions
        return rate_c, e_f0, e_l0

    def _commit(self, slots: np.ndarray, rates_new: np.ndarray) -> None:
        """Write new rates: materialize lazy drains, restamp the heap.

        Only flows whose rate actually moved are touched: an unchanged
        flow keeps its lazy ``(_sync, _rem)`` pair and its live heap
        entry (same rate + same drain line = the same finish time), so
        a refill that re-derives mostly-identical rates — a full refill
        after a local event, a component whose level did not shift —
        costs heap traffic proportional to the *change*, not the size.
        """
        old = self._rate[slots]
        changed = rates_new != old
        if not changed.all():
            slots = slots[changed]
            rates_new = rates_new[changed]
            old = old[changed]
        if not len(slots):
            return
        now = self.now
        self._rem[slots] = self._rem[slots] - old * (now - self._sync[slots])
        self._sync[slots] = now
        self._rate[slots] = rates_new
        self._gen[slots] += 1
        heap = self._heap
        rem = self._rem
        size = self._size
        gen = self._gen
        moving = rates_new > _EPS
        for s, r in zip(slots[moving].tolist(), rates_new[moving].tolist()):
            finish = now + rem[s] / r
            slack = (_EPS * size[s] + _EPS) / r
            heapq.heappush(heap, (finish, s, int(gen[s]), slack))

    # ------------------------------------------------------------------
    # Rates and telemetry
    # ------------------------------------------------------------------
    def rates(self) -> dict[int, float]:
        """Current max-min rates of the active flows (bytes/second)."""
        self._ensure_rates()
        slots = np.nonzero(self._act[: self._n])[0]
        ids = self._fid[slots].tolist()
        vals = self._rate[slots].tolist()
        return dict(zip(ids, vals))

    def telemetry(self) -> dict:
        """Per-engine fill telemetry (all counters monotone).

        Superset of the other engines' shape.  ``recomputes ==
        partial_refills + full_refills``; ``links_touched`` /
        ``flows_touched`` accumulate the links/flows each refill
        actually processed, while ``links_active`` / ``flows_active``
        accumulate what a from-scratch refill would have processed at
        the same instants — their ratio is the refill-work reduction.
        ``component_size_hwm`` is the largest committed component (in
        links); ``cert_fallbacks`` counts certificate-failure full
        refills (a subset of ``full_refills``); ``mutation_events``
        counts arrival batches + completion groups, so
        ``mutation_events - recomputes`` is the epoch-batching win.
        """
        return {
            "recomputes": self.recomputes,
            "fill_rounds": self.fill_rounds,
            "frozen_links": self.frozen_links,
            "compactions": self.compactions,
            "active_flows_hwm": self.active_flows_hwm,
            "partial_refills": self.partial_refills,
            "full_refills": self.full_refills,
            "cert_fallbacks": self.cert_fallbacks,
            "links_touched": self.links_touched,
            "flows_touched": self.flows_touched,
            "links_active": self.links_active,
            "flows_active": self.flows_active,
            "component_size_hwm": self.component_size_hwm,
            "mutation_events": self.mutation_events,
        }

    # ------------------------------------------------------------------
    # Time advancement
    # ------------------------------------------------------------------
    def next_completion_time(self) -> float | None:
        """Absolute time of the earliest flow completion (None if idle)."""
        if self._n_active == 0:
            return None
        self._ensure_rates()
        heap = self._heap
        gen = self._gen
        act = self._act
        while heap:
            finish, s, g, _slack = heap[0]
            if act[s] and gen[s] == g:
                return finish if finish > self.now else self.now
            heapq.heappop(heap)
        raise RuntimeError("active flows but no positive rates; check capacities")

    def advance_to(self, t: float) -> list[FlowResult]:
        """Advance the clock to ``t`` (< next completion), draining bytes."""
        if t < self.now - _EPS:
            raise ValueError(f"cannot rewind time: {t} < {self.now}")
        if t <= self.now:
            return []
        nc = self.next_completion_time()
        if nc is not None and t > nc + _EPS:
            raise ValueError(
                f"advance_to({t}) would skip a completion at {nc}; "
                "call advance_to_next_completion first"
            )
        self.now = t
        # a t landing in (nc, nc + _EPS] is accepted above, but any flow
        # draining dry in this step completed at nc, not t (see the
        # other engines)
        return self._pop_due(t, at=nc if nc is not None and t > nc else t)

    def advance_to_next_completion(self) -> list[FlowResult]:
        """Jump to the earliest completion; returns the finished flows."""
        nc = self.next_completion_time()
        if nc is None:
            return []
        self.now = nc
        return self._pop_due(nc, at=nc)

    def _pop_due(self, t: float, at: float) -> list[FlowResult]:
        """Pop and complete every heap entry whose trigger time is <= t.

        A flow completes at time ``t`` when its remaining volume is
        within the completion tolerance (``_EPS * size + _EPS`` bytes,
        like the other engines), i.e. when ``finish - slack <= t``.
        """
        heap = self._heap
        gen = self._gen
        act = self._act
        due: list[int] = []
        while heap:
            finish, s, g, slack = heap[0]
            if not act[s] or gen[s] != g:
                heapq.heappop(heap)
                continue
            if finish - slack > t:
                break
            heapq.heappop(heap)
            due.append(s)
        if not due:
            return []
        self.mutation_events += 1
        due.sort(key=lambda s: int(self._fid[s]))  # scalar-engine order
        users = self._users
        dirty = self._dirty_links
        results = []
        for s in due:
            fid = int(self._fid[s])
            res = FlowResult(fid, float(self._start[s]), at, float(self._size[s]))
            results.append(res)
            self._results.append(res)
            del self._id_to_slot[fid]
            self._act[s] = False
            self._gen[s] += 1
            self._rem[s] = 0.0
            tup = self._links[s]
            self._nnz_active -= len(tup)
            for l in tup:
                u = users[l]
                u.discard(s)
                if not u:
                    self._n_links_used -= 1
                dirty.add(l)
        self._n_active -= len(due)
        return results

    def run_until_idle(self, max_steps: int | None = None) -> float:
        """Drain all active flows; returns the final time."""
        steps = 0
        while self._n_active:
            if max_steps is not None and steps >= max_steps:
                raise RuntimeError("fluid simulation exceeded its step budget")
            finished = self.advance_to_next_completion()
            if not finished:  # pragma: no cover - defensive
                raise RuntimeError("no progress in fluid simulation")
            steps += 1
        return self.now

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IncFluidSimulator({self.num_links} links, "
            f"{self._n_active} active, t={self.now:g})"
        )
