"""Network simulation engines (paper Sec. VI-B).

* :mod:`repro.sim.fluid` — scalar max-min fair fluid model (the
  reference implementation);
* :mod:`repro.sim.fluid_vec` — vectorized batch fluid engine (the
  default sweep workhorse; same allocation, struct-of-arrays + CSR);
* :mod:`repro.sim.engines` — the engine registry every backend
  selection resolves through (``fluid`` / ``fluid-vec`` / ``replay``);
* :mod:`repro.sim.venus` — flit-level event-driven engine (the Venus
  substitute; used for validation and latency-sensitive studies);
* :mod:`repro.sim.network` — the link-space glue and the Full-Crossbar
  reference, shared phase/pattern drivers;
* :mod:`repro.sim.config` — the paper's network parameters.
"""

from .config import PAPER_CONFIG, NetworkConfig
from .engines import (
    DEFAULT_ENGINE,
    ENGINES,
    Engine,
    available_engines,
    fluid_engine_names,
    is_fluid_engine,
    make_fluid_simulator,
    register_engine,
    resolve_engine,
)
from .events import EventQueue
from .fluid import FlowResult, FluidSimulator
from .fluid_inc import IncFluidSimulator
from .fluid_vec import VecFluidSimulator
from .network import (
    LinkSpace,
    PhaseResult,
    crossbar_link_space,
    crossbar_pattern_time,
    crossbar_phase_time,
    simulate_pattern_fluid,
    simulate_phase_fluid,
    xgft_link_space,
)
from .venus import VenusPhaseResult, VenusSimulator

__all__ = [
    "NetworkConfig",
    "PAPER_CONFIG",
    "EventQueue",
    "FluidSimulator",
    "IncFluidSimulator",
    "VecFluidSimulator",
    "FlowResult",
    "DEFAULT_ENGINE",
    "ENGINES",
    "Engine",
    "available_engines",
    "fluid_engine_names",
    "is_fluid_engine",
    "make_fluid_simulator",
    "register_engine",
    "resolve_engine",
    "LinkSpace",
    "xgft_link_space",
    "crossbar_link_space",
    "PhaseResult",
    "simulate_phase_fluid",
    "simulate_pattern_fluid",
    "crossbar_phase_time",
    "crossbar_pattern_time",
    "VenusSimulator",
    "VenusPhaseResult",
]
