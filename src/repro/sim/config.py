"""Network parameters shared by the simulators (paper Sec. VI-B).

"For the network model, we have used an input/output buffered switch
model, link speed of 2 Gbits/s, flit size of 8 bytes, and segment size of
1 KB with a round-robin interleaving of messages at the network adapter."
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NetworkConfig", "PAPER_CONFIG"]


@dataclass(frozen=True)
class NetworkConfig:
    """Link/switch parameters of the simulated network."""

    #: link bandwidth in bytes per second (paper: 2 Gbit/s)
    link_bandwidth: float = 2e9 / 8
    #: flit size in bytes (paper: 8 B)
    flit_size: int = 8
    #: adapter segmentation unit in bytes (paper: 1 KB)
    segment_size: int = 1024
    #: per-hop propagation + switching latency in seconds (small vs the
    #: 4.1 us segment serialization time; not specified by the paper)
    hop_latency: float = 50e-9
    #: per-port buffer capacity, in segments (input and output side each)
    buffer_segments: int = 4

    def __post_init__(self):
        if self.link_bandwidth <= 0:
            raise ValueError("link_bandwidth must be positive")
        if self.flit_size <= 0 or self.segment_size <= 0:
            raise ValueError("flit and segment sizes must be positive")
        if self.segment_size % self.flit_size:
            raise ValueError("segment size must be a whole number of flits")
        if self.buffer_segments < 1:
            raise ValueError("need at least one segment of buffering")

    @property
    def segment_time(self) -> float:
        """Serialization time of one segment on one link (seconds)."""
        return self.segment_size / self.link_bandwidth

    @property
    def flit_time(self) -> float:
        """Serialization time of one flit (seconds)."""
        return self.flit_size / self.link_bandwidth

    def segments_of(self, size: int) -> int:
        """Number of segments a message of ``size`` bytes occupies."""
        if size <= 0:
            raise ValueError("message size must be positive")
        return -(-size // self.segment_size)


#: the configuration used throughout the paper's evaluation
PAPER_CONFIG = NetworkConfig()
