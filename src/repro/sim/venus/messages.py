"""Message and segment data model of the flit-level engine.

Messages are segmented into fixed-size segments (paper: 1 KB = 128 flits)
at the source adapter; segments are the unit of buffering, arbitration
and virtual-cut-through forwarding.  Flit granularity enters through the
serialization time of a segment (``segments * flit_time * flits``), which
is what "flit level" buys at the paper's operating point — the paper's
own results are phase completion times of multi-hundred-segment
messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Message", "Segment"]


@dataclass
class Message:
    """One application-level transfer, segmented at the adapter."""

    msg_id: int
    src: int
    dst: int
    size: int
    #: directed-channel index sequence from source host to destination host
    channels: tuple[int, ...]
    num_segments: int
    start_time: float
    #: segments not yet handed to the injection channel
    to_inject: int = field(init=False)
    #: segments fully received at the destination host
    delivered: int = field(init=False, default=0)
    finish_time: float | None = field(init=False, default=None)

    def __post_init__(self):
        if self.num_segments <= 0:
            raise ValueError("a message needs at least one segment")
        if not self.channels:
            raise ValueError("a message needs a route of at least one channel")
        self.to_inject = self.num_segments

    @property
    def done(self) -> bool:
        return self.finish_time is not None


@dataclass
class Segment:
    """One in-flight segment of a message."""

    message: Message
    index: int
    #: hop position: ``message.channels[hop]`` is the channel it will use next
    hop: int = 0

    @property
    def next_channel(self) -> int | None:
        """The channel this segment wants next, None once ejected."""
        if self.hop >= len(self.message.channels):
            return None
        return self.message.channels[self.hop]
