"""The flit-level, event-driven network engine (the "Venus" substitute).

Architecture (paper Sec. VI-B: input/output-buffered switches, credit
flow control, round-robin arbitration, round-robin message interleaving
at the adapters):

* Every directed inter-level link of the XGFT is a *channel* with a
  serialization server (one segment per ``segment_time``) and a
  credit-counted input buffer at its downstream end.
* A switch forwards by virtual cut-through at segment granularity: the
  head segment of each input buffer requests its output channel; each
  output channel arbitrates round-robin over the node's input buffers
  and transmits when it is idle *and* the downstream buffer has a free
  slot (credit).  Buffer slots are released when the segment departs the
  node, returning a credit upstream.
* A source adapter keeps one virtual queue per active message and feeds
  the host's up-channel round-robin across messages — the paper's
  "round-robin interleaving of messages at the network adapter".
* The destination adapter drains its down-channel at link rate; a
  message completes when its last segment arrives.

Because routes are up*/down*, the channel dependency graph is acyclic
and the credit scheme cannot deadlock; the engine enforces an event
budget as a defensive backstop regardless.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Sequence

from ...core.base import RouteTable
from ...topology import XGFT
from ..config import NetworkConfig, PAPER_CONFIG
from ..events import EventQueue
from .messages import Message, Segment

__all__ = ["VenusSimulator", "VenusPhaseResult"]

_HOST_FEEDER_BASE = 1 << 40  # feeder ids for adapter message queues


@dataclass(frozen=True)
class VenusPhaseResult:
    """Timing of one flit-level phase simulation."""

    duration: float
    message_finish: dict[int, float]
    events_processed: int


class _Channel:
    """A directed link: serialization server + downstream credit pool."""

    __slots__ = (
        "index",
        "src_node",
        "dst_node",
        "busy",
        "credits",
        "rr_pos",
    )

    def __init__(
        self, index: int, src_node: tuple[int, int], dst_node: tuple[int, int], credits: int
    ):
        self.index = index
        self.src_node = src_node
        self.dst_node = dst_node
        self.busy = False
        self.credits = credits
        self.rr_pos = 0


class VenusSimulator:
    """Flit-level simulation of one XGFT under a fixed route table.

    The simulator is single-shot: construct, :meth:`inject` messages (at
    time 0 or later via ``start_time``), :meth:`run`.
    """

    def __init__(self, topo: XGFT, config: NetworkConfig = PAPER_CONFIG, degraded=None):
        if degraded is not None and degraded.topo != topo:
            raise ValueError("degraded topology does not match the simulated XGFT")
        self.topo = topo
        self.config = config
        self.degraded = degraded
        self.queue = EventQueue()
        self._channels: dict[int, _Channel] = {}
        #: node -> ordered feeder ids (input channels; host messages appended)
        self._feeders_of: dict[tuple[int, int], list[int]] = {}
        #: feeder id -> FIFO of segments waiting at that node
        self._fifo: dict[int, deque[Segment]] = {}
        #: feeder id -> channel that delivered those segments (for credit return)
        self._feeder_channel: dict[int, int] = {}
        self._messages: list[Message] = []
        self._pending_start: list[Message] = []
        self._build_fabric()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_fabric(self) -> None:
        """Instantiate channels; dead cables of a degraded topology are
        simply never built, so a route over one fails injection validation."""
        topo = self.topo
        for level in range(topo.h):
            for node in range(topo.num_nodes(level)):
                for port in range(topo.w[level]):
                    up = topo.up_link_index(level, node, port)
                    if self.degraded is not None and not self.degraded.cable_alive[up]:
                        continue
                    parent = topo.up_neighbor(level, node, port)
                    down = topo.down_link_index(level, node, port)
                    self._add_channel(up, (level, node), (level + 1, parent))
                    self._add_channel(down, (level + 1, parent), (level, node))

    def _add_channel(self, index: int, src: tuple[int, int], dst: tuple[int, int]) -> None:
        self._channels[index] = _Channel(index, src, dst, self.config.buffer_segments)
        self._feeders_of.setdefault(src, [])
        self._feeders_of.setdefault(dst, [])
        # every incoming channel is a feeder at its destination node
        self._feeders_of[dst].append(index)
        self._fifo[index] = deque()
        self._feeder_channel[index] = index

    # ------------------------------------------------------------------
    # Injection
    # ------------------------------------------------------------------
    def inject_table(self, table: RouteTable, sizes: Sequence[int], start: float = 0.0) -> None:
        """Inject one message per route of ``table`` (sizes in bytes)."""
        if len(sizes) != len(table):
            raise ValueError("need one size per routed flow")
        for f in range(len(table)):
            route = table.route(f)
            self.inject(route.src, route.dst, int(sizes[f]), tuple(route.links(self.topo)), start)

    def inject(
        self, src: int, dst: int, size: int, channels: tuple[int, ...], start: float = 0.0
    ) -> Message:
        """Inject one message with an explicit channel route.

        The route is validated: consecutive channels must chain node to
        node, beginning at the source host and ending at the destination
        host (a truncated or disconnected route is a caller bug that
        would otherwise surface as a silently mis-delivered message).
        """
        self._validate_route(src, dst, channels)
        msg = Message(
            msg_id=len(self._messages),
            src=src,
            dst=dst,
            size=size,
            channels=channels,
            num_segments=self.config.segments_of(size),
            start_time=start,
        )
        self._messages.append(msg)
        self.queue.schedule(start, self._start_message, msg)
        return msg

    def _validate_route(self, src: int, dst: int, channels: tuple[int, ...]) -> None:
        if not channels:
            raise ValueError("a message route needs at least one channel")
        node = (0, src)
        for index in channels:
            ch = self._channels.get(index)
            if ch is None:
                raise ValueError(f"unknown channel {index} in route")
            if ch.src_node != node:
                raise ValueError(
                    f"disconnected route: channel {index} starts at {ch.src_node}, "
                    f"expected {node}"
                )
            node = ch.dst_node
        if node != (0, dst):
            raise ValueError(
                f"route for ({src} -> {dst}) terminates at {node}, not at the "
                "destination host"
            )

    def _start_message(self, msg: Message) -> None:
        """Open the message at the source adapter (a new feeder)."""
        feeder = _HOST_FEEDER_BASE + msg.msg_id
        fifo: deque[Segment] = deque(
            Segment(msg, i) for i in range(msg.num_segments)
        )
        msg.to_inject = 0  # all segments now sit in the adapter queue
        self._fifo[feeder] = fifo
        self._feeder_channel[feeder] = -1  # host queues hold no buffer credits
        host = (0, msg.src)
        self._feeders_of[host].append(feeder)
        self._try_start(msg.channels[0])

    # ------------------------------------------------------------------
    # Forwarding core
    # ------------------------------------------------------------------
    def _try_start(self, channel_index: int) -> None:
        """Attempt to begin a transmission on a channel (RR arbitration)."""
        ch = self._channels[channel_index]
        if ch.busy or ch.credits <= 0:
            return
        feeders = self._feeders_of[ch.src_node]
        n = len(feeders)
        if n == 0:
            return
        for probe in range(n):
            pos = (ch.rr_pos + probe) % n
            feeder = feeders[pos]
            fifo = self._fifo.get(feeder)
            if not fifo:
                continue
            seg = fifo[0]
            if seg.next_channel != channel_index:
                continue
            # transmit this segment
            ch.rr_pos = (pos + 1) % n
            fifo.popleft()
            if fifo:
                # the new head may want a *different*, currently idle
                # output (mixed-flow input buffer): re-arm that channel or
                # it would stall until an unrelated event pokes it
                nxt_head = fifo[0].next_channel
                if nxt_head is not None and nxt_head != channel_index:
                    self.queue.schedule(self.queue.now, self._try_start, nxt_head)
            delivered_by = self._feeder_channel[feeder]
            if delivered_by >= 0:
                # freeing a slot at this node returns a credit upstream
                self._channels[delivered_by].credits += 1
                self.queue.schedule(self.queue.now, self._try_start, delivered_by)
            elif not fifo:
                # exhausted host message queue: remove the feeder
                self._remove_host_feeder(ch.src_node, feeder)
            ch.busy = True
            ch.credits -= 1
            t_done = self.queue.now + self.config.segment_time
            self.queue.schedule(t_done, self._finish_transmission, ch, seg)
            return
        # no eligible feeder found: channel stays idle until a new head
        # segment or credit wakes it up again

    def _remove_host_feeder(self, node: tuple[int, int], feeder: int) -> None:
        self._feeders_of[node].remove(feeder)
        del self._fifo[feeder]
        del self._feeder_channel[feeder]

    def _finish_transmission(self, ch: _Channel, seg: Segment) -> None:
        """Serialization done: segment leaves the wire, channel frees."""
        ch.busy = False
        self.queue.schedule(
            self.queue.now + self.config.hop_latency, self._arrive, ch, seg
        )
        self._try_start(ch.index)

    def _arrive(self, ch: _Channel, seg: Segment) -> None:
        """Segment lands in the downstream node's input buffer."""
        seg.hop += 1
        nxt = seg.next_channel
        if nxt is None:
            # arrived at the destination host: consume
            ch.credits += 1
            self._try_start(ch.index)
            msg = seg.message
            msg.delivered += 1
            if msg.delivered == msg.num_segments:
                msg.finish_time = self.queue.now
            return
        self._fifo[ch.index].append(seg)
        self._try_start(nxt)

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def run(self, max_events: int | None = None) -> VenusPhaseResult:
        """Drain the event queue; returns per-message completion times."""
        if max_events is None:
            total_seg_hops = sum(
                m.num_segments * len(m.channels) for m in self._messages
            )
            max_events = 60 * total_seg_hops + 10_000
        end = self.queue.run(max_events=max_events)
        unfinished = [m.msg_id for m in self._messages if not m.done]
        if unfinished:
            raise RuntimeError(
                f"messages {unfinished[:5]}... did not complete; "
                "possible routing/credit inconsistency"
            )
        return VenusPhaseResult(
            duration=end,
            message_finish={m.msg_id: float(m.finish_time) for m in self._messages},
            events_processed=self.queue.processed,
        )
