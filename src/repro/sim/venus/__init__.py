"""Flit-level event-driven network simulator (the paper's Venus
substitute): IO-buffered switches, credit flow control, round-robin
arbitration and adapter interleaving (Sec. VI-B)."""

from .engine import VenusPhaseResult, VenusSimulator
from .messages import Message, Segment

__all__ = ["VenusSimulator", "VenusPhaseResult", "Message", "Segment"]
