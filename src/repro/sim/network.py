"""Glue between topologies, routing tables, patterns and the engines.

Defines the common *link index space* used by every network model:

* indices ``[0, topo.num_directed_links)`` — the XGFT's inter-level links
  (per :meth:`repro.topology.XGFT.up_link_index` and friends);
* then one *injection* link per leaf (host adapter, host -> first switch
  queue) and one *ejection* link per leaf.

The injection/ejection links are where endpoint contention materializes:
they exist in every model, including the ideal Full-Crossbar, so
slowdown ratios measure added *network* contention only — exactly the
paper's methodology (Sec. VI-B).

Note the modelled adapter links are distinct from the level-0 tree links:
the level-0 up/down links represent the host-switch cable (shared by the
same flows as the adapter, so for ``w1 == 1`` they are redundant but
harmless), while the adapter links exist in all models uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.base import RouteTable
from ..patterns.base import Pattern, Phase
from ..topology import XGFT
from .config import NetworkConfig, PAPER_CONFIG
from .engines import DEFAULT_ENGINE, make_fluid_simulator

__all__ = [
    "LinkSpace",
    "xgft_link_space",
    "crossbar_link_space",
    "PhaseResult",
    "flow_incidence",
    "simulate_phase_fluid",
    "simulate_pattern_fluid",
    "crossbar_phase_time",
    "crossbar_pattern_time",
]


@dataclass(frozen=True)
class LinkSpace:
    """A directed-link index space plus helpers to place flows into it."""

    num_links: int
    num_leaves: int
    #: first index of the injection links
    injection_base: int
    #: first index of the ejection links
    ejection_base: int

    def injection(self, leaf: int) -> int:
        return self.injection_base + leaf

    def ejection(self, leaf: int) -> int:
        return self.ejection_base + leaf


def xgft_link_space(topo: XGFT) -> LinkSpace:
    """Link space of an XGFT: tree links then injection/ejection links."""
    base = topo.num_directed_links
    return LinkSpace(
        num_links=base + 2 * topo.num_leaves,
        num_leaves=topo.num_leaves,
        injection_base=base,
        ejection_base=base + topo.num_leaves,
    )


def crossbar_link_space(num_leaves: int) -> LinkSpace:
    """Link space of the ideal single-stage crossbar: adapters only."""
    return LinkSpace(
        num_links=2 * num_leaves,
        num_leaves=num_leaves,
        injection_base=0,
        ejection_base=num_leaves,
    )


@dataclass(frozen=True)
class PhaseResult:
    """Timing of one simulated phase."""

    duration: float
    flow_finish: dict[int, float]  # flow index within the phase -> finish time


def flow_incidence(
    table: RouteTable, space: LinkSpace
) -> tuple[np.ndarray, np.ndarray]:
    """COO flow↔link incidence: tree links plus adapter links.

    Fully vectorized — :meth:`RouteTable.flow_links` already yields the
    tree-link expansion as arrays, and the injection/ejection links are
    plain offsets of the src/dst columns.
    """
    flows, links = table.flow_links()
    n = len(table)
    ids = np.arange(n, dtype=np.int64)
    coo_flow = np.concatenate((flows, ids, ids))
    coo_link = np.concatenate(
        (links, space.injection_base + table.src, space.ejection_base + table.dst)
    )
    return coo_flow, coo_link


def simulate_phase_fluid(
    table: RouteTable,
    sizes: Sequence[float],
    config: NetworkConfig = PAPER_CONFIG,
    degraded=None,
    engine: str = DEFAULT_ENGINE,
) -> PhaseResult:
    """Simulate one bulk-synchronous phase on an XGFT with a fluid engine.

    ``table`` routes the phase's flows; ``sizes`` gives per-flow bytes.
    All flows start at t=0; the phase ends when the last one drains.

    ``engine`` names a registered fluid-kind backend
    (:data:`repro.sim.engines.ENGINES`): the vectorized ``fluid-vec``
    default, or the scalar ``fluid`` reference.

    ``degraded`` (a :class:`repro.faults.DegradedTopology`) asserts the
    table was repaired against that failure mask: a flow routed over a
    dead link is a caller bug and raises instead of silently simulating
    bandwidth a failed cable no longer has.
    """
    if len(sizes) != len(table):
        raise ValueError("need one size per routed flow")
    if degraded is not None:
        broken = degraded.broken_flow_mask(table)
        if broken.any():
            f = int(np.nonzero(broken)[0][0])
            raise ValueError(
                f"flow {f} ({int(table.src[f])} -> {int(table.dst[f])}) and "
                f"{int(broken.sum()) - 1} other(s) traverse dead links; repair "
                "the table against the degraded topology first"
            )
    space = xgft_link_space(table.topo)
    sim = make_fluid_simulator(engine, space.num_links, config.link_bandwidth)
    n = len(table)
    coo_flow, coo_link = flow_incidence(table, space)
    sim.add_flows(
        np.arange(n, dtype=np.int64),
        np.asarray(sizes, dtype=np.float64),
        coo_flow,
        coo_link,
    )
    duration = sim.run_until_idle()
    return PhaseResult(duration, {r.flow_id: r.finish for r in sim.results})


def simulate_pattern_fluid(
    topo: XGFT,
    algorithm,
    pattern: Pattern,
    config: NetworkConfig = PAPER_CONFIG,
    mapping: Sequence[int] | None = None,
    engine: str = DEFAULT_ENGINE,
) -> float:
    """Total time of a multi-phase pattern (barrier between phases).

    ``mapping[rank]`` is the leaf a rank runs on (sequential by default,
    the paper's placement).  Routing tables are built per phase from the
    pattern's pairs — for the pattern-aware Colored baseline this is
    exactly the information it is entitled to.
    """
    if mapping is None:
        mapping = range(pattern.num_ranks)
    mapping = list(mapping)
    total = 0.0
    for phase in pattern.phases:
        pairs = [(mapping[f.src], mapping[f.dst]) for f in phase.flows]
        sizes = [f.size for f in phase.flows]
        keep = [(p, s) for p, s in zip(pairs, sizes) if p[0] != p[1]]
        if not keep:
            continue
        table = algorithm.build_table([p for p, _ in keep])
        total += simulate_phase_fluid(
            table, [s for _, s in keep], config, engine=engine
        ).duration
    return total


def crossbar_phase_time(
    phase: Phase,
    num_leaves: int,
    config: NetworkConfig = PAPER_CONFIG,
    mapping: Sequence[int] | None = None,
    engine: str = DEFAULT_ENGINE,
) -> float:
    """Completion time of a phase on the ideal Full-Crossbar.

    Only injection/ejection serialization applies: "the best performance
    that can be obtained in the absence of network contention".
    """
    if mapping is None:
        mapping = range(num_leaves)
    mapping = list(mapping)
    space = crossbar_link_space(num_leaves)
    keep = [
        (mapping[f.src], mapping[f.dst], float(f.size))
        for f in phase.flows
        if mapping[f.src] != mapping[f.dst]
    ]
    if not keep:
        return 0.0
    src = np.asarray([s for s, _, _ in keep], dtype=np.int64)
    dst = np.asarray([d for _, d, _ in keep], dtype=np.int64)
    sizes = np.asarray([z for _, _, z in keep], dtype=np.float64)
    n = len(keep)
    ids = np.arange(n, dtype=np.int64)
    sim = make_fluid_simulator(engine, space.num_links, config.link_bandwidth)
    sim.add_flows(
        ids,
        sizes,
        np.concatenate((ids, ids)),
        np.concatenate((space.injection_base + src, space.ejection_base + dst)),
    )
    return sim.run_until_idle()


def crossbar_pattern_time(
    pattern: Pattern,
    num_leaves: int,
    config: NetworkConfig = PAPER_CONFIG,
    mapping: Sequence[int] | None = None,
    engine: str = DEFAULT_ENGINE,
) -> float:
    """Total Full-Crossbar time of a multi-phase pattern."""
    return sum(
        crossbar_phase_time(phase, num_leaves, config, mapping, engine=engine)
        for phase in pattern.phases
    )
