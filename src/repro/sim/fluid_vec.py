"""Vectorized batch max-min fluid engine (struct-of-arrays incidence).

:class:`VecFluidSimulator` computes the same max-min fair allocation as
the scalar :class:`repro.sim.fluid.FluidSimulator` — the allocation is
unique, so the two engines are interchangeable up to floating-point
noise (``tests/sim/test_fluid_vec.py`` proves this property-based) —
but stores the active-flow set as parallel numpy arrays and the
flow↔link incidence twice: as a flat COO entry list and as a dense
``(flows, W)`` *link matrix* (W = the longest path, ``2h + 2`` links on
an XGFT — tree hops plus the two adapter links — so the pad waste is
tiny and every per-flow reduction is a SIMD row operation instead of a
ragged segment reduction).

Progressive filling is run in *parallel rounds*: instead of freezing
one bottleneck level per round (which degenerates to one link at a time
at cluster scale), every round freezes every **locally minimal** link —
a link freezes at its current fair share iff no unfrozen user of it has
a strictly smaller share on another link.  This is exact because shares
never decrease during progressive filling: removing users at or below a
link's fair share cannot lower it, so a locally minimal link's user set
is stable until it saturates, and sequential filling would freeze the
same flows at the same level.  Rounds therefore track the *dependency
depth* of the bottleneck structure (tens) rather than the number of
distinct water levels (thousands), and each round is a handful of
gathers, scatters and row reductions.  Frozen rows are compacted away
once they are half the working set, so per-round cost follows the
shrinking unfrozen set and total compaction cost stays O(nnz).

Batch completions work the same way: all flows reaching zero remaining
bytes complete together and their incidence entries are mask-filtered
out, so ``run_until_idle`` advances in O(completion events) vectorized
steps.  At 10⁴+ concurrent flows this is the difference between seconds
and minutes — see ``benchmarks/bench_fluid_scale.py`` and the committed
``BENCH_fluid.json``.

The public surface mirrors the scalar engine (``add_flow`` / ``rates``
/ ``advance_to`` / ``advance_to_next_completion`` / ``run_until_idle``
/ ``results``) and adds :meth:`add_flows`, a batch injection path that
accepts a ready-made COO incidence so the phase driver
(:func:`repro.sim.network.simulate_phase_fluid`) never materializes
per-flow Python link lists.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..obs import active as _obs_active
from ..obs.trace import TRACER
from .fluid import FlowResult, _EPS

__all__ = ["VecFluidSimulator"]


class VecFluidSimulator:
    """Batch max-min fluid simulation over a fixed link set.

    Drop-in replacement for :class:`repro.sim.fluid.FluidSimulator`
    (same constructor, same public methods, same semantics — including
    zero-size flows completing immediately at their start time), backed
    by struct-of-arrays flow state and vectorized parallel
    progressive filling.
    """

    def __init__(self, num_links: int, capacity: float | np.ndarray):
        if num_links <= 0:
            raise ValueError("need at least one link")
        cap = np.asarray(capacity, dtype=np.float64)
        if cap.ndim == 0:
            cap = np.full(num_links, float(cap))
        if cap.shape != (num_links,):
            raise ValueError(f"capacity must be scalar or shape ({num_links},)")
        if (cap <= 0).any():
            raise ValueError("capacities must be positive")
        self.capacity = cap
        self.num_links = num_links
        self.now = 0.0
        #: number of max-min recomputations (diagnostics / benchmarks)
        self.recomputes = 0
        # telemetry (see telemetry()); _obs_on is captured at
        # construction so the overhead gate can A/B with obs.deactivated()
        self._obs_on = _obs_active()
        self.fill_rounds = 0
        self.frozen_links = 0
        self.compactions = 0
        self.active_flows_hwm = 0
        self._results: list[FlowResult] = []
        self._rates_valid = False

        # struct-of-arrays flow state; slots are append-only, the active
        # set is a boolean mask (completed slots are never reused)
        self._flow_id = np.empty(0, dtype=np.int64)
        self._remaining = np.empty(0, dtype=np.float64)
        self._size = np.empty(0, dtype=np.float64)
        self._start = np.empty(0, dtype=np.float64)
        self._rate = np.empty(0, dtype=np.float64)
        self._active = np.empty(0, dtype=bool)
        self._id_to_slot: dict[int, int] = {}

        # incidence of *active* flows: flat COO entries (any order;
        # completions mask rows out) plus the dense per-slot link
        # matrix, rows padded with the virtual link ``num_links``
        self._e_flow = np.empty(0, dtype=np.int64)
        self._e_link = np.empty(0, dtype=np.int64)
        self._link_matrix = np.empty((0, 0), dtype=np.int64)

        # pending (not yet solidified) additions
        self._pend_ids: list[int] = []
        self._pend_id_set: set[int] = set()
        self._pend_sizes: list[float] = []
        self._pend_starts: list[float] = []
        self._pend_e_flow: list[np.ndarray] = []
        self._pend_e_link: list[np.ndarray] = []

    # ------------------------------------------------------------------
    # Flow management
    # ------------------------------------------------------------------
    def add_flow(self, flow_id: int, links: Sequence[int], size: float) -> None:
        """Inject a single flow at the current time (scalar-compatible)."""
        link_arr = np.asarray([int(l) for l in links], dtype=np.int64)
        self.add_flows(
            np.asarray([int(flow_id)], dtype=np.int64),
            np.asarray([float(size)], dtype=np.float64),
            np.zeros(len(link_arr), dtype=np.int64),
            link_arr,
        )

    def add_flows(
        self,
        flow_ids: np.ndarray | Sequence[int],
        sizes: np.ndarray | Sequence[float],
        coo_flow: np.ndarray,
        coo_link: np.ndarray,
    ) -> None:
        """Inject a batch of flows at the current time.

        ``coo_flow[k]`` indexes into ``flow_ids`` (0-based within this
        batch) and ``coo_link[k]`` is the directed link that flow
        traverses; entries may arrive in any order.  Zero-size flows
        complete immediately at the current time; negative sizes raise.
        """
        flow_ids = np.asarray(flow_ids, dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.float64)
        coo_flow = np.asarray(coo_flow, dtype=np.int64)
        coo_link = np.asarray(coo_link, dtype=np.int64)
        if flow_ids.ndim != 1 or sizes.shape != flow_ids.shape:
            raise ValueError("flow_ids and sizes must be parallel 1-d arrays")
        if coo_flow.shape != coo_link.shape:
            raise ValueError("coo_flow and coo_link must be parallel 1-d arrays")
        if len(flow_ids) == 0:
            return
        if (sizes < 0).any():
            raise ValueError("flow size must be non-negative")
        if len(np.unique(flow_ids)) != len(flow_ids):
            raise ValueError("duplicate flow ids within the batch")
        for fid in flow_ids.tolist():
            if fid in self._id_to_slot or fid in self._pend_id_set:
                raise ValueError(f"flow id {fid} already active")
        if len(coo_link) and (
            coo_link.min() < 0 or coo_link.max() >= self.num_links
        ):
            bad = coo_link[(coo_link < 0) | (coo_link >= self.num_links)][0]
            raise ValueError(f"link {int(bad)} out of range")
        if len(coo_flow) and (coo_flow.min() < 0 or coo_flow.max() >= len(flow_ids)):
            raise ValueError("coo_flow indexes outside the batch")
        links_per_flow = np.bincount(coo_flow, minlength=len(flow_ids))
        # zero-*size* flows complete instantly, but every flow still
        # needs a route; zero-*link* flows are a caller bug either way
        if (links_per_flow == 0).any():
            raise ValueError("a flow must traverse at least one link")
        # a repeated (flow, link) entry would double-count the flow
        # against that link's capacity (and diverge from the scalar
        # engine, which collapses repeats); routes never produce one,
        # so dedup here — np.unique also leaves the entries flow-sorted
        key = coo_flow * np.int64(self.num_links) + coo_link
        uniq = np.unique(key)
        if len(uniq) != len(key):
            coo_flow = uniq // self.num_links
            coo_link = uniq % self.num_links

        instant = sizes == 0.0
        for fid in flow_ids[instant].tolist():
            self._results.append(FlowResult(int(fid), self.now, self.now, 0.0))
        if instant.all():
            return
        keep = ~instant
        kept_ids = flow_ids[keep]
        # remap coo_flow onto the kept subset of the batch, offset past
        # any still-pending earlier batches (slots are assigned at
        # solidify time, in pending order)
        new_index = np.cumsum(keep) - 1  # batch idx -> kept idx
        entry_keep = keep[coo_flow]
        offset = len(self._pend_ids)
        self._pend_ids.extend(kept_ids.tolist())
        self._pend_id_set.update(kept_ids.tolist())
        self._pend_sizes.extend(sizes[keep].tolist())
        self._pend_starts.extend([self.now] * int(keep.sum()))
        self._pend_e_flow.append(new_index[coo_flow[entry_keep]] + offset)
        self._pend_e_link.append(coo_link[entry_keep])
        self._rates_valid = False
        if self._obs_on:
            n_now = int(self._active.sum()) + len(self._pend_ids)
            if n_now > self.active_flows_hwm:
                self.active_flows_hwm = n_now

    def _solidify(self) -> None:
        """Fold pending additions into the struct-of-arrays state."""
        if not self._pend_ids:
            return
        base = len(self._flow_id)
        n_new = len(self._pend_ids)
        new_ids = np.asarray(self._pend_ids, dtype=np.int64)
        self._flow_id = np.concatenate((self._flow_id, new_ids))
        new_sizes = np.asarray(self._pend_sizes, dtype=np.float64)
        self._size = np.concatenate((self._size, new_sizes))
        self._remaining = np.concatenate((self._remaining, new_sizes.copy()))
        self._start = np.concatenate(
            (self._start, np.asarray(self._pend_starts, dtype=np.float64))
        )
        self._rate = np.concatenate((self._rate, np.zeros(n_new, dtype=np.float64)))
        self._active = np.concatenate((self._active, np.ones(n_new, dtype=bool)))
        for i, fid in enumerate(self._pend_ids):
            self._id_to_slot[fid] = base + i
        new_e_flow = np.concatenate(self._pend_e_flow)  # batch-local ids
        new_e_link = np.concatenate(self._pend_e_link)
        self._e_flow = np.concatenate((self._e_flow, new_e_flow + base))
        self._e_link = np.concatenate((self._e_link, new_e_link))
        self._link_matrix = self._append_link_rows(new_e_flow, new_e_link, n_new)
        self._pend_ids, self._pend_sizes, self._pend_starts = [], [], []
        self._pend_id_set = set()
        self._pend_e_flow, self._pend_e_link = [], []

    def _append_link_rows(
        self, e_flow: np.ndarray, e_link: np.ndarray, n_new: int
    ) -> np.ndarray:
        """Extend the dense link matrix with one row per new flow."""
        pad = self.num_links
        order = np.argsort(e_flow, kind="stable")
        counts = np.bincount(e_flow, minlength=n_new)
        width = max(int(counts.max()), self._link_matrix.shape[1])
        starts = np.cumsum(counts) - counts
        # column of each (flow-sorted) entry within its flow's row
        cols = np.arange(len(e_flow), dtype=np.int64) - np.repeat(starts, counts)
        rows = np.full((n_new, width), pad, dtype=np.int64)
        rows[e_flow[order], cols] = e_link[order]
        old = self._link_matrix
        if old.shape[1] < width:
            widened = np.full((old.shape[0], width), pad, dtype=np.int64)
            widened[:, : old.shape[1]] = old
            old = widened
        return np.concatenate((old, rows)) if len(old) else rows

    @property
    def active_flows(self) -> int:
        return int(self._active.sum()) + len(self._pend_ids)

    @property
    def results(self) -> list[FlowResult]:
        """Completed flows, in completion order."""
        return self._results

    # ------------------------------------------------------------------
    # Max-min rate computation (parallel progressive filling)
    # ------------------------------------------------------------------
    def _recompute_rates(self) -> None:
        self.recomputes += 1
        self._solidify()
        self._rates_valid = True
        if self._obs_on and TRACER.enabled:
            with TRACER.span("fluid.fill", flows=int(self._active.sum())):
                self._fill_rates()
        else:
            self._fill_rates()

    def _fill_rates(self) -> None:
        act = self._active
        slots = np.nonzero(act)[0]
        n_act = len(slots)
        if n_act == 0:
            return
        num_links = self.num_links
        inf = np.inf

        # compact flow-id space 0..n_act-1 over the active slots
        inv = np.empty(len(act), dtype=np.int64)
        inv[slots] = np.arange(n_act, dtype=np.int64)
        e_f = inv[self._e_flow]
        e_l = self._e_link
        lm = self._link_matrix[slots]  # (n_act, W), pad = num_links
        width = lm.shape[1]

        counts = np.bincount(e_l, minlength=num_links).astype(np.float64)
        remaining_cap = self.capacity.copy()
        # shares_ext[num_links] is the pad link: share inf, never frozen
        shares_ext = np.full(num_links + 1, inf, dtype=np.float64)
        shares = shares_ext[:num_links]
        np.divide(remaining_cap, counts, out=shares, where=counts > 0.0)

        rate_c = np.zeros(n_act, dtype=np.float64)  # final rates, by original compact id
        mbuf = np.empty(n_act, dtype=np.float64)  # per-flow bottleneck, by original id
        unfrozen_full = np.ones(n_act, dtype=bool)  # by original id
        orig = np.arange(n_act, dtype=np.int64)  # current row -> original id
        unfrozen = np.ones(n_act, dtype=bool)  # by current row
        blocked = np.empty(num_links + 1, dtype=bool)
        n_unfrozen = n_act
        last_compact = n_act
        rounds = frozen_links = compactions = 0
        obs_on = self._obs_on
        while n_unfrozen:
            # per-flow bottleneck: the minimal share over the flow's links
            m = shares_ext[lm].min(axis=1)
            m[~unfrozen] = inf
            mbuf[orig] = m
            # a link freezes at its current share iff no unfrozen user
            # has a strictly smaller bottleneck elsewhere — exact,
            # because shares never decrease during progressive filling,
            # so every other link of its users saturates at a level no
            # lower than this one's.  Frozen flows carry an inf
            # bottleneck and never block.
            blocker = mbuf[e_f] < shares[e_l] - _EPS
            blocked[:] = False
            blocked[num_links] = True  # the pad link never freezes a flow
            blocked[e_l[blocker]] = True
            # a flow freezes (at its bottleneck share) once any real
            # link of its path is unblocked
            hit = ~blocked[lm].all(axis=1)
            hit &= unfrozen
            if not hit.any():  # pragma: no cover - defensive
                break
            rounds += 1
            if obs_on:
                frozen_links += int((~blocked[:num_links] & (counts > 0.0)).sum())
            np.maximum(m, 0.0, out=m)
            frozen_now = orig[hit]
            rate_c[frozen_now] = m[hit]
            unfrozen_full[frozen_now] = False
            unfrozen &= ~hit
            n_unfrozen -= int(hit.sum())
            # release the frozen flows' bandwidth from every link they use
            flat = lm[hit].ravel()
            weights = np.repeat(m[hit], width)
            real = flat < num_links
            flat = flat[real]
            counts -= np.bincount(flat, minlength=num_links)
            remaining_cap -= np.bincount(
                flat, weights=weights[real], minlength=num_links
            )
            np.maximum(remaining_cap, 0.0, out=remaining_cap)
            shares[:] = inf
            np.divide(remaining_cap, counts, out=shares, where=counts > 0.0)
            # drop frozen rows and entries once they are half the
            # working set: per-round cost then tracks the shrinking
            # unfrozen set and total compaction cost stays O(nnz)
            if n_unfrozen and n_unfrozen <= last_compact // 2:
                keep = unfrozen_full[e_f]
                e_f, e_l = e_f[keep], e_l[keep]
                lm = lm[unfrozen]
                orig = orig[unfrozen]
                unfrozen = np.ones(n_unfrozen, dtype=bool)
                last_compact = n_unfrozen
                compactions += 1
        self._rate[slots] = rate_c
        if obs_on:
            self.fill_rounds += rounds
            self.frozen_links += frozen_links
            self.compactions += compactions

    def telemetry(self) -> dict:
        """Per-engine fill telemetry (all counters monotone).

        Same shape as :meth:`FluidSimulator.telemetry
        <repro.sim.fluid.FluidSimulator.telemetry>`; here ``fill_rounds``
        counts *parallel* rounds (the bottleneck dependency depth) and
        ``compactions`` counts working-set compactions.
        """
        return {
            "recomputes": self.recomputes,
            "fill_rounds": self.fill_rounds,
            "frozen_links": self.frozen_links,
            "compactions": self.compactions,
            "active_flows_hwm": self.active_flows_hwm,
        }

    def rates(self) -> dict[int, float]:
        """Current max-min rates of the active flows (bytes/second)."""
        if not self._rates_valid:
            self._recompute_rates()
        self._solidify()
        slots = np.nonzero(self._active)[0]
        ids = self._flow_id[slots].tolist()
        vals = self._rate[slots].tolist()
        return dict(zip(ids, vals))

    # ------------------------------------------------------------------
    # Time advancement
    # ------------------------------------------------------------------
    def next_completion_time(self) -> float | None:
        """Absolute time of the earliest flow completion (None if idle)."""
        if self.active_flows == 0:
            return None
        if not self._rates_valid:
            self._recompute_rates()
        self._solidify()
        moving = self._active & (self._rate > _EPS)
        if not moving.any():  # pragma: no cover - all rates zero
            raise RuntimeError("active flows but no positive rates; check capacities")
        return self.now + float((self._remaining[moving] / self._rate[moving]).min())

    def advance_to(self, t: float) -> list[FlowResult]:
        """Advance the clock to ``t`` (< next completion), draining bytes."""
        if t < self.now - _EPS:
            raise ValueError(f"cannot rewind time: {t} < {self.now}")
        if t <= self.now:
            # same-instant advance: a no-op, and deliberately *before*
            # the next-completion query so a completion group and an
            # arrival batch landing at one timestamp stay in the same
            # refill epoch (one recompute serves both)
            return []
        nc = self.next_completion_time()
        if nc is not None and t > nc + _EPS:
            raise ValueError(
                f"advance_to({t}) would skip a completion at {nc}; "
                "call advance_to_next_completion first"
            )
        dt = t - self.now
        finished: list[FlowResult] = []
        if dt > 0:
            act = self._active
            self._remaining[act] -= self._rate[act] * dt
            self.now = t
            # a t landing in (nc, nc + _EPS] is accepted above, but any
            # flow draining dry in this step completed at nc, not t —
            # stamp the true instant, or dense arrival streams (which
            # advance in sub-_EPS hops) systematically inflate FCTs
            finished = self._collect_finished(
                at=nc if nc is not None and t > nc else None
            )
        return finished

    def _collect_finished(self, at: float | None = None) -> list[FlowResult]:
        finish = self.now if at is None else at
        act = self._active
        done = act & (self._remaining <= _EPS * self._size + _EPS)
        slots = np.nonzero(done)[0]
        if len(slots) == 0:
            return []
        # completion order matches the scalar engine: ascending flow id
        slots = slots[np.argsort(self._flow_id[slots], kind="stable")]
        results = []
        for s in slots.tolist():
            fid = int(self._flow_id[s])
            res = FlowResult(fid, float(self._start[s]), finish, float(self._size[s]))
            results.append(res)
            self._results.append(res)
            del self._id_to_slot[fid]
        self._active[slots] = False
        keep = ~done[self._e_flow]
        self._e_flow = self._e_flow[keep]
        self._e_link = self._e_link[keep]
        self._rates_valid = False
        return results

    def advance_to_next_completion(self) -> list[FlowResult]:
        """Jump to the earliest completion; returns the finished flows."""
        t = self.next_completion_time()
        if t is None:
            return []
        dt = t - self.now
        act = self._active
        self._remaining[act] -= self._rate[act] * dt
        self.now = t
        return self._collect_finished()

    def run_until_idle(self, max_steps: int | None = None) -> float:
        """Drain all active flows; returns the final time."""
        steps = 0
        while self.active_flows:
            if max_steps is not None and steps >= max_steps:
                raise RuntimeError("fluid simulation exceeded its step budget")
            finished = self.advance_to_next_completion()
            if not finished:  # pragma: no cover - defensive
                raise RuntimeError("no progress in fluid simulation")
            steps += 1
        return self.now

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VecFluidSimulator({self.num_links} links, "
            f"{self.active_flows} active, t={self.now:g})"
        )
