"""A minimal deterministic discrete-event kernel.

Shared by the flit-level engine and the replay engine.  Events at equal
timestamps are ordered by insertion sequence number, which makes every
simulation run bit-reproducible regardless of dict/heap iteration order.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

__all__ = ["EventQueue"]


class EventQueue:
    """A time-ordered callback queue.

    ``schedule(t, fn, *args)`` enqueues ``fn(*args)`` at simulated time
    ``t``; :meth:`run` pops events in (time, insertion) order until the
    queue drains or ``until`` is reached.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable, tuple]] = []
        self._seq = 0
        #: current simulated time (updated as events fire)
        self.now = 0.0
        self._processed = 0

    def schedule(self, t: float, fn: Callable, *args: Any) -> None:
        """Enqueue ``fn(*args)`` at time ``t`` (must not precede ``now``)."""
        if t < self.now - 1e-12:
            raise ValueError(f"cannot schedule into the past: {t} < {self.now}")
        heapq.heappush(self._heap, (t, self._seq, fn, args))
        self._seq += 1

    def schedule_in(self, dt: float, fn: Callable, *args: Any) -> None:
        """Enqueue relative to the current time."""
        self.schedule(self.now + dt, fn, *args)

    @property
    def pending(self) -> int:
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Number of events fired so far (diagnostics)."""
        return self._processed

    def step(self) -> bool:
        """Fire the next event; returns False when the queue is empty."""
        if not self._heap:
            return False
        t, _, fn, args = heapq.heappop(self._heap)
        self.now = t
        self._processed += 1
        fn(*args)
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Drain the queue; returns the final simulated time.

        ``until`` stops the clock at a horizon; ``max_events`` guards
        against runaway simulations (raises ``RuntimeError``).
        """
        fired = 0
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self.now = until
                break
            if max_events is not None and fired >= max_events:
                raise RuntimeError(f"event budget exceeded ({max_events} events)")
            self.step()
            fired += 1
        return self.now
