"""Max-min fair fluid network model (progressive filling).

The fast network engine used for the full-scale figure sweeps.  Flows are
fluid streams over capacitated directed links; at every instant each flow
receives its *max-min fair* rate (computed by the classic progressive-
filling / water-filling algorithm), and the simulation advances from
completion to completion.

Why this is a faithful substitute for the flit-level engine at the
paper's operating point: messages are large (hundreds of segments), the
adapters interleave segments round-robin, and switches arbitrate
round-robin per output port — in steady state this realizes a
bandwidth-fair share on every contended link, which is exactly the
max-min allocation.  ``tests/sim/test_cross_validation.py`` quantifies
the agreement between the two engines on small configurations.

The model deliberately ignores propagation latency (bandwidth dominates
at 750 KB messages; the flit-level engine models latency).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from ..obs import active as _obs_active
from ..obs.trace import TRACER

__all__ = ["FluidSimulator", "FlowResult"]

_EPS = 1e-9


@dataclass
class FlowResult:
    """Outcome of one simulated flow."""

    flow_id: int
    start: float
    finish: float
    size: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


class _ActiveFlow:
    __slots__ = ("flow_id", "links", "remaining", "rate", "start", "size")

    def __init__(self, flow_id: int, links: tuple[int, ...], size: float, start: float):
        self.flow_id = flow_id
        self.links = links
        self.remaining = float(size)
        self.size = float(size)
        self.rate = 0.0
        self.start = start


class FluidSimulator:
    """An incremental max-min fluid simulation over a fixed link set.

    Parameters
    ----------
    num_links:
        Size of the directed-link index space.
    capacity:
        Scalar (uniform) or per-link array of capacities in bytes/second.

    Usage: :meth:`add_flow` at the current time, then either
    :meth:`run_until_idle` (batch) or repeated
    :meth:`advance_to_next_completion` (interactive, e.g. from the
    replay engine).
    """

    def __init__(self, num_links: int, capacity: float | np.ndarray):
        if num_links <= 0:
            raise ValueError("need at least one link")
        cap = np.asarray(capacity, dtype=np.float64)
        if cap.ndim == 0:
            cap = np.full(num_links, float(cap))
        if cap.shape != (num_links,):
            raise ValueError(f"capacity must be scalar or shape ({num_links},)")
        if (cap <= 0).any():
            raise ValueError("capacities must be positive")
        self.capacity = cap
        self.num_links = num_links
        self.now = 0.0
        self._flows: dict[int, _ActiveFlow] = {}
        self._rates_valid = False
        self._results: list[FlowResult] = []
        #: number of max-min recomputations (diagnostics / benchmarks)
        self.recomputes = 0
        # telemetry (see telemetry()); _obs_on is captured at
        # construction so the overhead gate can A/B with obs.deactivated()
        self._obs_on = _obs_active()
        self.fill_rounds = 0
        self.frozen_links = 0
        self.compactions = 0
        self.active_flows_hwm = 0

    # ------------------------------------------------------------------
    # Flow management
    # ------------------------------------------------------------------
    def add_flow(self, flow_id: int, links: Sequence[int], size: float) -> None:
        """Inject a flow at the current time.

        Zero-size flows carry no bytes: they complete immediately at the
        current time (their :class:`FlowResult` has ``start == finish``)
        without ever joining the active set.
        """
        if flow_id in self._flows:
            raise ValueError(f"flow id {flow_id} already active")
        # a repeated link would double-count the flow against that
        # link's capacity; routes never produce one, so collapse them
        links = tuple(dict.fromkeys(int(l) for l in links))
        if not links:
            raise ValueError("a flow must traverse at least one link")
        for l in links:
            if not 0 <= l < self.num_links:
                raise ValueError(f"link {l} out of range")
        if size < 0:
            raise ValueError("flow size must be non-negative")
        if size == 0:
            self._results.append(FlowResult(flow_id, self.now, self.now, 0.0))
            return
        self._flows[flow_id] = _ActiveFlow(flow_id, links, size, self.now)
        self._rates_valid = False
        if self._obs_on and len(self._flows) > self.active_flows_hwm:
            self.active_flows_hwm = len(self._flows)

    def add_flows(
        self,
        flow_ids: Sequence[int] | np.ndarray,
        sizes: Sequence[float] | np.ndarray,
        coo_flow: np.ndarray,
        coo_link: np.ndarray,
    ) -> None:
        """Batch :meth:`add_flow` from a COO incidence.

        Same contract as :meth:`VecFluidSimulator.add_flows
        <repro.sim.fluid_vec.VecFluidSimulator.add_flows>`: ``coo_flow``
        indexes into ``flow_ids`` and ``coo_link`` lists the traversed
        links.  The scalar engine simply unpacks the batch.
        """
        coo_flow = np.asarray(coo_flow, dtype=np.int64)
        coo_link = np.asarray(coo_link, dtype=np.int64)
        if len(coo_flow) and (coo_flow.min() < 0 or coo_flow.max() >= len(flow_ids)):
            raise ValueError("coo_flow indexes outside the batch")
        per_flow: list[list[int]] = [[] for _ in range(len(flow_ids))]
        for f, l in zip(coo_flow.tolist(), coo_link.tolist()):
            per_flow[f].append(l)
        for fid, size, links in zip(flow_ids, sizes, per_flow):
            self.add_flow(int(fid), links, float(size))

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    @property
    def results(self) -> list[FlowResult]:
        """Completed flows, in completion order."""
        return self._results

    # ------------------------------------------------------------------
    # Max-min rate computation (progressive filling)
    # ------------------------------------------------------------------
    def _recompute_rates(self) -> None:
        self.recomputes += 1
        if self._obs_on and TRACER.enabled:
            with TRACER.span("fluid.fill", flows=len(self._flows)):
                self._fill_rates()
        else:
            self._fill_rates()

    def _fill_rates(self) -> None:
        flows = self._flows
        rounds = 0
        remaining = self.capacity.copy()
        link_users: dict[int, set[int]] = {}
        for fid, fl in flows.items():
            for l in fl.links:
                link_users.setdefault(l, set()).add(fid)
        unfrozen = set(flows)
        while unfrozen:
            # bottleneck link: minimal fair share among links with users
            best_share = math.inf
            best_link = -1
            for l, users in link_users.items():
                if not users:
                    continue
                share = remaining[l] / len(users)
                if share < best_share - _EPS or (
                    share < best_share + _EPS and l < best_link
                ):
                    best_share = share
                    best_link = l
            if best_link < 0:  # pragma: no cover - defensive
                break
            rounds += 1
            best_share = max(best_share, 0.0)
            for fid in list(link_users[best_link]):
                fl = flows[fid]
                fl.rate = best_share
                unfrozen.discard(fid)
                for l in fl.links:
                    link_users[l].discard(fid)
                    remaining[l] -= best_share
            remaining = np.maximum(remaining, 0.0)
        if self._obs_on:
            # each scalar round freezes exactly one bottleneck link
            self.fill_rounds += rounds
            self.frozen_links += rounds
        self._rates_valid = True

    def telemetry(self) -> dict:
        """Per-engine fill telemetry (all counters monotone).

        ``compactions`` is always 0 for the scalar engine (only the
        vectorized engine compacts its working set); the key is kept so
        both engines report the same shape.
        """
        return {
            "recomputes": self.recomputes,
            "fill_rounds": self.fill_rounds,
            "frozen_links": self.frozen_links,
            "compactions": self.compactions,
            "active_flows_hwm": self.active_flows_hwm,
        }

    def rates(self) -> dict[int, float]:
        """Current max-min rates of the active flows (bytes/second)."""
        if not self._rates_valid:
            self._recompute_rates()
        return {fid: fl.rate for fid, fl in self._flows.items()}

    # ------------------------------------------------------------------
    # Time advancement
    # ------------------------------------------------------------------
    def next_completion_time(self) -> float | None:
        """Absolute time of the earliest flow completion (None if idle)."""
        if not self._flows:
            return None
        if not self._rates_valid:
            self._recompute_rates()
        best = math.inf
        for fl in self._flows.values():
            if fl.rate > _EPS:
                best = min(best, self.now + fl.remaining / fl.rate)
        if best is math.inf:  # pragma: no cover - all rates zero
            raise RuntimeError("active flows but no positive rates; check capacities")
        return best

    def advance_to(self, t: float) -> list[FlowResult]:
        """Advance the clock to ``t`` (< next completion), draining bytes."""
        if t < self.now - _EPS:
            raise ValueError(f"cannot rewind time: {t} < {self.now}")
        if t <= self.now:
            # same-instant advance: a no-op, and deliberately *before*
            # the next-completion query so a completion group and an
            # arrival batch landing at one timestamp stay in the same
            # refill epoch (one recompute serves both)
            return []
        nc = self.next_completion_time()
        if nc is not None and t > nc + _EPS:
            raise ValueError(
                f"advance_to({t}) would skip a completion at {nc}; "
                "call advance_to_next_completion first"
            )
        dt = t - self.now
        finished = []
        if dt > 0:
            for fl in self._flows.values():
                fl.remaining -= fl.rate * dt
            self.now = t
            # a t landing in (nc, nc + _EPS] is accepted above, but any
            # flow draining dry in this step completed at nc, not t —
            # stamp the true instant, or dense arrival streams (which
            # advance in sub-_EPS hops) systematically inflate FCTs
            finished = self._collect_finished(
                at=nc if nc is not None and t > nc else None
            )
        return finished

    def _collect_finished(self, at: float | None = None) -> list[FlowResult]:
        finish = self.now if at is None else at
        done = [fid for fid, fl in self._flows.items() if fl.remaining <= _EPS * fl.size + _EPS]
        results = []
        for fid in sorted(done):
            fl = self._flows.pop(fid)
            res = FlowResult(fid, fl.start, finish, fl.size)
            results.append(res)
            self._results.append(res)
        if done:
            self._rates_valid = False
        return results

    def advance_to_next_completion(self) -> list[FlowResult]:
        """Jump to the earliest completion; returns the finished flows."""
        t = self.next_completion_time()
        if t is None:
            return []
        dt = t - self.now
        for fl in self._flows.values():
            fl.remaining -= fl.rate * dt
        self.now = t
        return self._collect_finished()

    def run_until_idle(self, max_steps: int | None = None) -> float:
        """Drain all active flows; returns the final time."""
        steps = 0
        while self._flows:
            if max_steps is not None and steps >= max_steps:
                raise RuntimeError("fluid simulation exceeded its step budget")
            finished = self.advance_to_next_completion()
            if not finished:  # pragma: no cover - defensive
                raise RuntimeError("no progress in fluid simulation")
            steps += 1
        return self.now
