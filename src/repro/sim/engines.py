"""The simulation-engine registry.

Every place the package selects an execution backend — the
:class:`repro.api.Scenario` facade, the sweep engine, the CLI, the
phase drivers in :mod:`repro.sim.network` — resolves the engine name
through :data:`ENGINES`, a :class:`repro.registry.Registry` like the
algorithm/pattern/topology/metric registries.  Third-party backends
join by registration instead of by editing engine internals::

    from repro.sim.engines import Engine, register_engine

    register_engine(Engine(
        name="fluid-gpu",
        kind="fluid",
        factory=GpuFluidSimulator,
        description="max-min fluid model on the GPU",
    ))

Two engine *kinds* exist:

* ``"fluid"`` — a phase-level max-min fluid backend; ``factory`` builds
  a simulator over ``(num_links, capacity)`` exposing the
  :class:`repro.sim.fluid.FluidSimulator` surface (``add_flows`` /
  ``run_until_idle`` / ``results`` ...).  Built-ins: ``fluid`` (the
  scalar reference implementation) and ``fluid-vec`` (the vectorized
  batch engine, the default — see ``docs/performance.md``).
* ``"replay"`` — the Dimemas-substitute trace replay; it drives whole
  patterns causally and has no per-phase simulator factory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..registry import Registry
from .fluid import FluidSimulator
from .fluid_inc import IncFluidSimulator
from .fluid_vec import VecFluidSimulator

__all__ = [
    "DEFAULT_ENGINE",
    "ENGINES",
    "Engine",
    "available_engines",
    "fluid_engine_names",
    "is_fluid_engine",
    "make_fluid_simulator",
    "register_engine",
    "resolve_engine",
]

#: the engine registry: name -> :class:`Engine`
ENGINES: Registry = Registry("engine")

#: the engine used when a caller does not name one.  ``fluid-vec`` is
#: the default: the equivalence suite (property + golden + Venus
#: cross-validation) proves it computes the scalar engine's allocation,
#: and ``BENCH_fluid.json`` its order-of-magnitude speedups at scale.
DEFAULT_ENGINE = "fluid-vec"


@dataclass(frozen=True)
class Engine:
    """A named, registered simulation backend."""

    name: str
    #: ``"fluid"`` (phase-level fluid model) or ``"replay"``
    kind: str
    #: ``(num_links, capacity) -> simulator`` for fluid-kind engines
    factory: Callable | None = None
    description: str = ""

    def __post_init__(self):
        if self.kind not in ("fluid", "replay"):
            raise ValueError(f"unknown engine kind {self.kind!r}")
        if self.kind == "fluid" and self.factory is None:
            raise ValueError("a fluid-kind engine needs a simulator factory")


def register_engine(engine: Engine, *, override: bool = False) -> Engine:
    """Register an :class:`Engine` under its own name."""
    ENGINES.register(engine.name, engine, override=override)
    return engine


def resolve_engine(name: str | Engine) -> Engine:
    """The registered :class:`Engine`, or ``ValueError`` naming the options."""
    if isinstance(name, Engine):
        return name
    return ENGINES.get(str(name))


def available_engines() -> tuple[str, ...]:
    """Registered engine names (built-in and third-party)."""
    return ENGINES.names()


def fluid_engine_names() -> tuple[str, ...]:
    """The registered fluid-kind engine names."""
    return tuple(n for n in ENGINES.names() if ENGINES.get(n).kind == "fluid")


def is_fluid_engine(name: str | Engine) -> bool:
    """Does ``name`` denote a phase-level fluid backend?"""
    return resolve_engine(name).kind == "fluid"


def make_fluid_simulator(name: str | Engine, num_links: int, capacity):
    """Instantiate the fluid simulator of a fluid-kind engine."""
    engine = resolve_engine(name)
    if engine.kind != "fluid":
        raise ValueError(
            f"engine {engine.name!r} is not a fluid backend and cannot "
            "run the phase-level fluid model"
        )
    return engine.factory(num_links, capacity)


register_engine(
    Engine(
        name="fluid",
        kind="fluid",
        factory=FluidSimulator,
        description="scalar max-min fluid reference implementation",
    )
)
register_engine(
    Engine(
        name="fluid-vec",
        kind="fluid",
        factory=VecFluidSimulator,
        description="vectorized batch max-min fluid engine (default)",
    )
)
register_engine(
    Engine(
        name="fluid-vec-inc",
        kind="fluid",
        factory=IncFluidSimulator,
        description=(
            "incremental max-min fluid engine: component-local refills "
            "with exact-agreement fallback to full filling"
        ),
    )
)
register_engine(
    Engine(
        name="replay",
        kind="replay",
        description="Dimemas-substitute causal trace replay",
    )
)
