"""Registered evaluation metrics and the context they compute over.

Pre-registry, every metric the sweep engine knew was a hardcoded branch
inside ``execute_run``.  Here each metric is a first-class
:class:`Metric` in :data:`METRICS` (a :class:`repro.registry.Registry`):
a named callable over an :class:`EvalContext` with declared
applicability — ``fault_only`` metrics are trivially constant (0 / 1)
on a pristine fabric and only become informative on the faults axis.

The :class:`EvalContext` carries one evaluated scenario — topology,
pattern, routed (and possibly repaired) per-phase tables, degradation
state — and lazily caches the expensive shared intermediates (the link
census, the fluid/replay simulation), so a metric set pays only for
what it actually reads.

Third parties extend the set by registration::

    @register_metric("p99_link_load", description="99th pct used-link load")
    def p99(ctx):
        loads = [load for load, n in ctx.load_histogram.items() for _ in range(n)]
        return float(np.percentile(loads, 99)) if loads else 0.0

after which the name works in sweep specs, ``repro.api`` scenarios and
the CLI.  All built-in metrics are lower-is-better, which is what the
regression comparison (``repro compare``) assumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from .contention import link_load_summary, max_network_contention, routes_per_nca
from .core.base import RouteTable
from .faults import inflation_ratio
from .registry import Registry
from .sim.config import PAPER_CONFIG, NetworkConfig
from .sim.engines import DEFAULT_ENGINE, is_fluid_engine

__all__ = [
    "DEFAULT_METRICS",
    "RESILIENCE_METRICS",
    "KNOWN_METRICS",
    "METRICS",
    "Metric",
    "EvalContext",
    "SKIPPED",
    "register_metric",
    "available_metrics",
    "known_metric_names",
    "resolve_metrics",
]

#: sentinel a metric returns to omit itself from the record (e.g. a
#: census over an empty table)
SKIPPED = object()

#: the metric registry: name -> :class:`Metric`
METRICS: Registry = Registry("metric")


@dataclass(frozen=True)
class Metric:
    """A named, registered metric over an :class:`EvalContext`.

    ``fault_only`` declares applicability: the metric is trivially
    constant on a pristine topology and only informative under the
    faults axis (it still *computes* everywhere — pristine sweeps get
    the trivial value, keeping artifact rows uniformly shaped).
    """

    name: str
    fn: Callable[["EvalContext"], object]
    fault_only: bool = False
    description: str = ""

    def __call__(self, ctx: "EvalContext") -> object:
        return self.fn(ctx)


def register_metric(
    name: str, *, fault_only: bool = False, description: str = "", override: bool = False
):
    """Decorator registering ``fn(ctx) -> value`` as a :class:`Metric`."""

    def decorator(fn: Callable[["EvalContext"], object]) -> Metric:
        metric = Metric(name=name, fn=fn, fault_only=fault_only, description=description)
        METRICS.register(name, metric, override=override)
        return metric

    return decorator


def available_metrics() -> tuple[str, ...]:
    """Registered metric names (built-in and third-party)."""
    return METRICS.names()


# ----------------------------------------------------------------------
# The evaluation context
# ----------------------------------------------------------------------
@dataclass
class EvalContext:
    """Everything a metric may consult about one evaluated scenario.

    ``tables``/``phases`` are the *surviving* per-phase route tables and
    ``(pairs, sizes)`` lists (post-repair under faults); ``baseline_agg``
    is the pristine load aggregate the inflation metrics compare
    against.  The link census and the simulation are computed lazily and
    cached, shared by every metric that reads them.
    """

    topo: object
    pattern: object
    algorithm: object
    tables: list[RouteTable]
    phases: list[tuple[list[tuple[int, int]], list[int]]]
    engine: str = DEFAULT_ENGINE
    config: NetworkConfig = PAPER_CONFIG
    seed: int = 0
    degraded: object = None
    fault_info: dict = field(default_factory=dict)
    baseline_agg: tuple | None = None
    #: run identity for diagnostics (e.g. the replay lossy-fault error)
    label: str = ""
    faults_label: str = "none"
    #: crossbar-reference memo key component (the pattern spec string)
    pattern_key: str = ""
    #: shared ``(pattern_key, num_leaves, engine) -> t_ref`` memo
    crossbar_memo: dict | None = None

    _load_aggregate: tuple | None = field(default=None, repr=False)
    _sim_time: float | None = field(default=None, repr=False)
    _merged: RouteTable | None = field(default=None, repr=False)

    @property
    def load_aggregate(self) -> tuple[int, float, dict[int, int]]:
        """Across-phase ``(max_load, mean_load_over_used_links, histogram)``."""
        if self._load_aggregate is None:
            self._load_aggregate = load_aggregate(self.tables)
        return self._load_aggregate

    @property
    def load_histogram(self) -> dict[int, int]:
        return self.load_aggregate[2]

    @property
    def sim_time(self) -> float:
        """Simulated pattern time on the (possibly degraded) fabric."""
        if self._sim_time is None:
            self._sim_time = _simulate(self)
        return self._sim_time

    def merged_table(self) -> RouteTable:
        """All surviving phases concatenated into one table."""
        if self._merged is None:
            self._merged = concat_tables(self.tables)
        return self._merged


# ----------------------------------------------------------------------
# Shared machinery (formerly private to the sweep engine)
# ----------------------------------------------------------------------
def phase_pairs(pattern) -> list[tuple[list[tuple[int, int]], list[int]]]:
    """Per-phase (pairs, sizes) with self-flows dropped (they use no links)."""
    out = []
    for phase in pattern.phases:
        kept = [(f.pair, f.size) for f in phase.flows if f.src != f.dst]
        if kept:
            out.append(([p for p, _ in kept], [s for _, s in kept]))
    return out


def concat_tables(tables: list[RouteTable]) -> RouteTable:
    merged = tables[0]
    for t in tables[1:]:
        merged = merged.concat(t)
    return merged


def load_aggregate(tables: list[RouteTable]) -> tuple[int, float, dict[int, int]]:
    """Across-phase (max_load, mean_load_over_used_links, histogram)."""
    histogram: dict[int, int] = {}
    max_load, used_sum, used_links = 0, 0.0, 0
    for table in tables:
        summary = link_load_summary(table)
        max_load = max(max_load, summary.max_load)
        used_sum += summary.mean_load * summary.num_used_links
        used_links += summary.num_used_links
        for load, count in summary.histogram.items():
            if load > 0:
                histogram[load] = histogram.get(load, 0) + count
    return max_load, used_sum / used_links if used_links else 0.0, histogram


def _simulate(ctx: EvalContext) -> float:
    from .sim.network import simulate_phase_fluid

    if is_fluid_engine(ctx.engine):
        return sum(
            simulate_phase_fluid(
                table, sizes, ctx.config, degraded=ctx.degraded, engine=ctx.engine
            ).duration
            for table, (_, sizes) in zip(ctx.tables, ctx.phases)
        )
    from .dimemas import pattern_trace, replay_on_xgft
    from .faults import RepairedRouting

    algorithm = ctx.algorithm
    if ctx.degraded is not None:
        # replay cannot drop flows: an MPI trace with a disconnected pair
        # would simply deadlock, so reject early with a diagnostic
        routed = sum(len(t) for t in ctx.tables)
        offered = sum(len(p) for p, _ in phase_pairs(ctx.pattern))
        if routed < offered:
            raise ValueError(
                f"{ctx.label}: {offered - routed} flow(s) disconnected by "
                f"{ctx.faults_label!r}; the replay engine cannot drop flows — use "
                "the fluid engine for lossy fault scenarios"
            )
        algorithm = RepairedRouting(algorithm, ctx.degraded, seed=ctx.seed)
    algorithm.prepare(sorted({(s, d) for s, d in ctx.pattern.pairs() if s != d}))
    return replay_on_xgft(pattern_trace(ctx.pattern), ctx.topo, algorithm, ctx.config).total_time


def crossbar_time_of_phases(
    phases: list[tuple[list[tuple[int, int]], list[int]]],
    num_leaves: int,
    config: NetworkConfig,
    engine: str = DEFAULT_ENGINE,
) -> float:
    """Full-Crossbar time of explicit per-phase (pairs, sizes) lists.

    The lossy-fault slowdown reference: unlike
    :func:`crossbar_reference` it times exactly the flows given (the
    survivors), not the whole pattern.
    """
    from .sim.engines import make_fluid_simulator
    from .sim.network import crossbar_link_space

    total = 0.0
    for pairs, sizes in phases:
        if not pairs:
            continue
        space = crossbar_link_space(num_leaves)
        sim = make_fluid_simulator(engine, space.num_links, config.link_bandwidth)
        arr = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        ids = np.arange(len(arr), dtype=np.int64)
        sim.add_flows(
            ids,
            np.asarray(sizes, dtype=np.float64),
            np.concatenate((ids, ids)),
            np.concatenate(
                (space.injection_base + arr[:, 0], space.ejection_base + arr[:, 1])
            ),
        )
        total += sim.run_until_idle()
    return total


def crossbar_reference(pattern, topo, engine: str, config: NetworkConfig) -> float:
    from .sim.network import crossbar_pattern_time

    if is_fluid_engine(engine):
        t_ref = crossbar_pattern_time(pattern, topo.num_leaves, config, engine=engine)
    else:
        from .dimemas import pattern_trace, replay_on_crossbar

        t_ref = replay_on_crossbar(pattern_trace(pattern), topo.num_leaves, config).total_time
    if t_ref <= 0:
        raise ValueError("crossbar reference time must be positive (empty pattern?)")
    return t_ref


# ----------------------------------------------------------------------
# Built-in metrics (the pre-registry hardcoded set)
# ----------------------------------------------------------------------
@register_metric("max_link_load", description="max flows over any used link")
def _max_link_load(ctx: EvalContext):
    return ctx.load_aggregate[0]


@register_metric("mean_link_load", description="mean flows over used links")
def _mean_link_load(ctx: EvalContext):
    return ctx.load_aggregate[1]


@register_metric(
    "max_network_contention", description="worst endpoint-aware contention level"
)
def _max_network_contention(ctx: EvalContext):
    return max((max_network_contention(t) for t in ctx.tables), default=0)


@register_metric("routes_per_nca", description="all-phase route census per root NCA")
def _routes_per_nca(ctx: EvalContext):
    if not ctx.tables:
        return SKIPPED
    if not hasattr(ctx.tables[0], "nca_level"):
        return SKIPPED  # path tables (general graphs) have no NCA structure
    return [int(x) for x in routes_per_nca(ctx.merged_table())]


@register_metric(
    "disconnected_fraction",
    fault_only=True,
    description="fraction of flows with no surviving route",
)
def _disconnected_fraction(ctx: EvalContext):
    total = ctx.fault_info.get("total_flows", 0)
    return ctx.fault_info["disconnected_flows"] / total if total else 0.0


@register_metric(
    "max_load_inflation",
    fault_only=True,
    description="max link load vs the fault-free baseline",
)
def _max_load_inflation(ctx: EvalContext):
    return (
        inflation_ratio(ctx.load_aggregate[0], ctx.baseline_agg[0])
        if ctx.baseline_agg
        else 1.0
    )


@register_metric(
    "mean_load_inflation",
    fault_only=True,
    description="mean link load vs the fault-free baseline",
)
def _mean_load_inflation(ctx: EvalContext):
    return (
        inflation_ratio(ctx.load_aggregate[1], ctx.baseline_agg[1])
        if ctx.baseline_agg
        else 1.0
    )


@register_metric("sim_time", description="simulated pattern completion time")
def _sim_time(ctx: EvalContext):
    return ctx.sim_time


@register_metric("slowdown", description="sim time over the Full-Crossbar reference")
def _slowdown(ctx: EvalContext):
    sim_time = ctx.sim_time
    if ctx.fault_info.get("disconnected_flows", 0) > 0:
        # lossy scenario: the reference must cover the *same* surviving
        # flows as the numerator, or losing traffic would drive slowdown
        # below the 1.0 floor and the lower-is-better gate would reward
        # disconnection; flow loss itself is disconnected_fraction's job
        t_ref = crossbar_time_of_phases(
            ctx.phases, ctx.topo.num_leaves, ctx.config, engine=ctx.engine
        )
        return sim_time / t_ref if t_ref > 0 else 1.0
    memo = ctx.crossbar_memo if ctx.crossbar_memo is not None else {}
    # the config is part of the key: a Scenario's memo outlives a single
    # evaluate() call, and a re-evaluation under a different config must
    # not divide by the old config's reference time
    ref_key = (ctx.pattern_key, ctx.topo.num_leaves, ctx.engine, ctx.config)
    t_ref = memo.get(ref_key)
    if t_ref is None:
        t_ref = memo[ref_key] = crossbar_reference(
            ctx.pattern, ctx.topo, ctx.engine, ctx.config
        )
    return sim_time / t_ref


#: metrics computed when a spec does not name its own
DEFAULT_METRICS = (
    "max_link_load",
    "mean_link_load",
    "max_network_contention",
    "sim_time",
    "slowdown",
)

#: resilience metrics, meaningful on the ``faults`` axis (all
#: lower-is-better; trivially 0 / 1 / 1 on the pristine topology)
RESILIENCE_METRICS = (
    "disconnected_fraction",
    "max_load_inflation",
    "mean_load_inflation",
)

#: the built-in metric names (third-party registrations extend
#: :data:`METRICS` beyond this tuple; see :func:`available_metrics`)
KNOWN_METRICS = DEFAULT_METRICS + RESILIENCE_METRICS + ("routes_per_nca",)


def known_metric_names() -> tuple[str, ...]:
    """Every name the engine can compute right now (registry snapshot)."""
    return METRICS.names()


def resolve_metrics(names: Sequence[str]) -> tuple[Metric, ...]:
    """Look up a metric name list, with one aggregate diagnostic."""
    unknown = sorted(set(names) - set(METRICS.names()))
    if unknown:
        raise ValueError(
            f"unknown metrics {unknown}; known: {', '.join(METRICS.names())}"
        )
    return tuple(METRICS.get(name) for name in names)
