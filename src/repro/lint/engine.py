"""The lint engine: rule registration, discovery, suppression, output.

Rules are components of the unified registry machinery
(:class:`repro.registry.Registry`), registered by id::

    @register_rule(
        "REP001", name="numpy-global-rng", family="determinism",
        summary="module-level numpy RNG call",
    )
    def check(ctx: FileContext) -> Iterator[Diagnostic]: ...

A rule is a function from a :class:`~repro.lint.context.FileContext`
to diagnostics; ``scopes``/``exclude_scopes`` gate where it runs (see
the scope-tag table in :mod:`repro.lint.context`), and ``docs=True``
additionally runs it on python code fences extracted from markdown.

Suppression is per line: ``# repro: noqa[REP001]`` (or a blanket
``# repro: noqa``) on any physical line of the flagged statement.
Suppressions that suppress nothing are themselves findings
(``REP090``), so stale annotations cannot accumulate.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

from ..registry import Registry
from .context import FileContext, ProjectScope, extract_fences
from .diagnostics import Diagnostic, LintResult

__all__ = [
    "LINT_RULES",
    "Rule",
    "register_rule",
    "rule_ids",
    "run_lint",
    "select_rules",
]

#: rule ids always enabled regardless of ``--rules`` selection
META_RULES = ("REP000", "REP090")

#: path components never descended into during directory discovery;
#: deliberately includes ``fixtures`` so the rule fixtures under
#: ``tests/lint/fixtures/`` (true-positive files!) keep CI green while
#: staying lintable by explicit file argument
SKIP_DIR_PARTS = frozenset(
    {"__pycache__", ".git", ".ruff_cache", ".mypy_cache", ".pytest_cache",
     ".hypothesis", "fixtures", "node_modules", ".venv", "venv", ".eggs"}
)

CheckFn = Callable[[FileContext], Iterable[Diagnostic]]


@dataclass(frozen=True)
class Rule:
    """One registered invariant check."""

    id: str
    name: str
    family: str
    summary: str
    check: CheckFn
    scopes: frozenset[str] = frozenset()  # required tags (any-of); empty = everywhere
    exclude_scopes: frozenset[str] = frozenset()
    docs: bool = False  # also run on markdown code fences

    def applies(self, ctx: FileContext) -> bool:
        if ctx.kind == "fence" and not self.docs:
            return False
        if self.exclude_scopes & ctx.scopes:
            return False
        if self.scopes and not (self.scopes & ctx.scopes):
            return False
        return True


#: the lint-rule registry — extensible like every other component family
LINT_RULES: Registry = Registry("lint rule")


def register_rule(
    rule_id: str,
    *,
    name: str,
    family: str,
    summary: str,
    scopes: Iterable[str] = (),
    exclude_scopes: Iterable[str] = (),
    docs: bool = False,
    override: bool = False,
) -> Callable[[CheckFn], CheckFn]:
    """Decorator registering a check function under ``rule_id``."""

    def decorator(fn: CheckFn) -> CheckFn:
        LINT_RULES.register(
            rule_id,
            Rule(
                id=rule_id,
                name=name,
                family=family,
                summary=summary,
                check=fn,
                scopes=frozenset(scopes),
                exclude_scopes=frozenset(exclude_scopes),
                docs=docs,
            ),
            override=override,
        )
        return fn

    return decorator


def rule_ids() -> tuple[str, ...]:
    """Every registered rule id, sorted."""
    _load_rule_pack()
    return LINT_RULES.names()


def select_rules(selection: Iterable[str] | None) -> tuple[Rule, ...]:
    """Resolve a ``--rules`` selection to rule objects.

    Items match an exact id (``REP001``), an id prefix (``REP00``) or a
    family name (``determinism``).  Meta rules (parse errors, unused
    suppressions) are always included.  Unknown selectors raise.
    """
    _load_rule_pack()
    all_rules = [LINT_RULES.get(rid) for rid in LINT_RULES.names()]
    if selection is None:
        return tuple(all_rules)
    chosen: dict[str, Rule] = {}
    for item in selection:
        key = item.strip()
        if not key:
            continue
        matched = [
            r
            for r in all_rules
            if r.id == key.upper()
            or r.id.startswith(key.upper())
            or r.family == key.lower()
            or r.name == key.lower()
        ]
        if not matched:
            families = sorted({r.family for r in all_rules})
            raise ValueError(
                f"unknown rule selector {item!r}; use an id/prefix from "
                f"{', '.join(r.id for r in all_rules)} or a family from "
                f"{', '.join(families)}"
            )
        for rule in matched:
            chosen[rule.id] = rule
    for rid in META_RULES:
        if rid in LINT_RULES:
            chosen[rid] = LINT_RULES.get(rid)
    return tuple(chosen[rid] for rid in sorted(chosen))


def _load_rule_pack() -> None:
    """Import the bundled rule modules (registration side effects)."""
    from . import rules as _rules  # noqa: F401


# ----------------------------------------------------------------------
# Discovery
# ----------------------------------------------------------------------
def discover(paths: Iterable[str | Path]) -> list[Path]:
    """Expand paths to the files to lint (sorted, deduplicated).

    Directories are walked for ``*.py`` and ``*.md``, skipping caches
    and ``fixtures`` directories; explicitly named files are always
    included — lint a fixture directly to see its findings.
    """
    out: dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for found in sorted(path.rglob("*.py")) + sorted(path.rglob("*.md")):
                if any(part in SKIP_DIR_PARTS for part in found.parts):
                    continue
                out[found] = None
        elif path.exists():
            out[path] = None
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(out)


# ----------------------------------------------------------------------
# The run
# ----------------------------------------------------------------------
@dataclass
class _FileOutcome:
    diagnostics: list[Diagnostic] = field(default_factory=list)
    suppressed: int = 0


def run_lint(
    paths: Iterable[str | Path],
    *,
    rules: Iterable[str] | None = None,
) -> LintResult:
    """Lint ``paths`` and return the aggregate :class:`LintResult`."""
    selected = select_rules(rules)
    files = discover(paths)
    scope = ProjectScope.build([p for p in files if p.suffix == ".py"])
    enabled_ids = {r.id for r in selected}

    diagnostics: list[Diagnostic] = []
    suppressed_total = 0
    scanned = 0
    for path in files:
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            diagnostics.append(
                Diagnostic("REP000", str(path), 1, 1, f"unreadable file: {exc}")
            )
            continue
        scanned += 1
        if path.suffix == ".md":
            for ctx in _fence_contexts(path, source, scope):
                outcome = _lint_context(ctx, selected, enabled_ids)
                diagnostics.extend(outcome.diagnostics)
                suppressed_total += outcome.suppressed
            continue
        ctx = FileContext(path, source, scope=scope)
        outcome = _lint_context(ctx, selected, enabled_ids)
        diagnostics.extend(outcome.diagnostics)
        suppressed_total += outcome.suppressed

    diagnostics.sort(key=lambda d: (d.path, d.line, d.col, d.rule))
    statistics: dict[str, int] = {}
    for d in diagnostics:
        statistics[d.rule] = statistics.get(d.rule, 0) + 1
    return LintResult(
        diagnostics=tuple(diagnostics),
        files=scanned,
        rules=tuple(sorted(enabled_ids)),
        suppressed=suppressed_total,
        statistics=statistics,
    )


def _fence_contexts(path: Path, text: str, scope: ProjectScope) -> Iterator[FileContext]:
    for index, (first_line, code) in enumerate(extract_fences(text), start=1):
        ctx = FileContext(
            path,
            code,
            display=f"{path}#fence{index}",
            line_offset=first_line - 1,
            scope=scope,
            kind="fence",
        )
        if ctx.parse_error is not None:
            continue  # prose/shell inside an untagged fence: not code
        yield ctx


def _lint_context(
    ctx: FileContext, selected: tuple[Rule, ...], enabled_ids: set[str]
) -> _FileOutcome:
    outcome = _FileOutcome()
    if ctx.parse_error is not None:
        if ctx.kind == "python":
            exc = ctx.parse_error
            outcome.diagnostics.append(
                Diagnostic(
                    "REP000",
                    ctx.display,
                    (exc.lineno or 1) + ctx.line_offset,
                    (exc.offset or 1),
                    f"file does not parse: {exc.msg}",
                )
            )
        return outcome

    raw: list[Diagnostic] = []
    for rule in selected:
        if rule.id in META_RULES or not rule.applies(ctx):
            continue
        for diag in rule.check(ctx):
            raw.append(diag)

    # apply suppressions; remember which noqa lines earned their keep
    for diag in raw:
        if _suppressed(ctx, diag):
            outcome.suppressed += 1
        else:
            outcome.diagnostics.append(diag)

    # unused-suppression findings (REP090) — a noqa naming only rules
    # outside the enabled set is not reportable (we cannot know whether
    # it would have matched), and doc fences are exempt so the docs can
    # illustrate the suppression syntax
    if "REP090" in enabled_ids and ctx.kind != "fence":
        for line, named in sorted(ctx.noqa.items()):
            used = ctx.noqa_used.get(line, set())
            if named is None:
                if not used:
                    outcome.diagnostics.append(
                        Diagnostic(
                            "REP090",
                            ctx.display,
                            line + ctx.line_offset,
                            1,
                            "blanket '# repro: noqa' suppresses nothing on this line",
                        )
                    )
                continue
            stale = sorted((named & enabled_ids) - used)
            if stale and not (named - enabled_ids):
                outcome.diagnostics.append(
                    Diagnostic(
                        "REP090",
                        ctx.display,
                        line + ctx.line_offset,
                        1,
                        "unused suppression: "
                        + ", ".join(stale)
                        + " did not fire on this line",
                    )
                )
    return outcome


def _suppressed(ctx: FileContext, diag: Diagnostic) -> bool:
    first = diag.line - ctx.line_offset
    last = max(first, diag.end_line - ctx.line_offset)
    for line in range(first, last + 1):
        if line not in ctx.noqa:
            continue
        named = ctx.noqa[line]
        if named is None or diag.rule in named:
            ctx.noqa_used.setdefault(line, set()).add(diag.rule)
            return True
    return False


# ----------------------------------------------------------------------
# Small AST helpers shared by the rule modules
# ----------------------------------------------------------------------
def call_qualified(ctx: FileContext, node: ast.Call) -> str | None:
    """Alias-resolved dotted name of the called object, or ``None``."""
    return ctx.qualified(node.func)


def string_arg(node: ast.Call, position: int, *keywords: str) -> ast.Constant | None:
    """The string literal at ``position`` (or one of ``keywords``), if any."""
    if len(node.args) > position:
        arg = node.args[position]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg
        return None
    for kw in node.keywords:
        if kw.arg in keywords and isinstance(kw.value, ast.Constant) and isinstance(
            kw.value.value, str
        ):
            return kw.value
    return None


def has_keyword(node: ast.Call, name: str) -> bool:
    return any(kw.arg == name for kw in node.keywords)


def in_with_context(ctx: FileContext, node: ast.AST) -> bool:
    """Is ``node`` (part of) a ``with`` item's context expression?"""
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, ast.withitem):
            return _contains(ancestor.context_expr, node)
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return False
    return False


def _contains(root: ast.AST, target: ast.AST) -> bool:
    return any(child is target for child in ast.walk(root))
