"""Diagnostics: the unit of lint output.

A :class:`Diagnostic` is one finding of one rule at one source anchor.
Anchors are 1-based ``file:line:col`` (the editor/CI convention);
``end_line`` extends the anchor over multi-line statements so a
``# repro: noqa[RULE]`` on any physical line of the flagged statement
suppresses it.

The JSON document (:func:`result_to_json` / :func:`result_from_json`)
is schema-versioned like every other artifact in the package, so the
CI job can upload it and downstream tooling can trend it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = [
    "Diagnostic",
    "LintResult",
    "SCHEMA_VERSION",
    "result_from_json",
    "result_to_json",
]

#: bumped whenever the JSON document shape changes
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Diagnostic:
    """One rule finding at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    end_line: int = 0  # 0 -> same as line

    def __post_init__(self) -> None:
        if self.end_line < self.line:
            object.__setattr__(self, "end_line", self.line)

    @property
    def anchor(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def format(self) -> str:
        return f"{self.anchor}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "end_line": self.end_line,
            "message": self.message,
        }

    @staticmethod
    def from_dict(d: dict[str, object]) -> "Diagnostic":
        return Diagnostic(
            rule=str(d["rule"]),
            path=str(d["path"]),
            line=int(d["line"]),  # type: ignore[arg-type]
            col=int(d["col"]),  # type: ignore[arg-type]
            message=str(d["message"]),
            end_line=int(d.get("end_line", 0)),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class LintResult:
    """Everything one lint run produced.

    ``diagnostics`` are sorted by ``(path, line, col, rule)``;
    ``statistics`` counts findings per rule id (only rules that fired),
    plus the scan totals the ``--statistics`` flag prints.
    """

    diagnostics: tuple[Diagnostic, ...]
    files: int
    rules: tuple[str, ...]
    suppressed: int = 0
    statistics: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def format_text(self, statistics: bool = False) -> str:
        lines = [d.format() for d in self.diagnostics]
        if statistics:
            lines.append("")
            for rule, count in sorted(self.statistics.items()):
                lines.append(f"{rule:>8}  {count}")
            lines.append(
                f"{len(self.diagnostics)} finding(s) in {self.files} file(s), "
                f"{self.suppressed} suppressed, {len(self.rules)} rule(s) enabled"
            )
        elif not self.diagnostics:
            lines.append(f"clean: {self.files} file(s), {len(self.rules)} rule(s)")
        return "\n".join(lines)


def result_to_json(result: LintResult) -> str:
    """The schema-versioned JSON document for a lint run."""
    doc = {
        "kind": "repro-lint",
        "schema_version": SCHEMA_VERSION,
        "files": result.files,
        "rules": list(result.rules),
        "suppressed": result.suppressed,
        "statistics": dict(sorted(result.statistics.items())),
        "diagnostics": [d.to_dict() for d in result.diagnostics],
    }
    return json.dumps(doc, indent=1, sort_keys=True)


def result_from_json(text: str) -> LintResult:
    """Inverse of :func:`result_to_json` (round-trip tested)."""
    doc = json.loads(text)
    if doc.get("kind") != "repro-lint":
        raise ValueError(f"not a repro-lint document (kind={doc.get('kind')!r})")
    if doc.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported lint schema_version {doc.get('schema_version')!r} "
            f"(this build reads {SCHEMA_VERSION})"
        )
    return LintResult(
        diagnostics=tuple(Diagnostic.from_dict(d) for d in doc["diagnostics"]),
        files=int(doc["files"]),
        rules=tuple(doc["rules"]),
        suppressed=int(doc.get("suppressed", 0)),
        statistics={str(k): int(v) for k, v in doc.get("statistics", {}).items()},
    )
