"""REP03x — concurrency and asyncio invariants.

* **REP030** — functions dispatched to process pools (``imap``,
  ``apply_async``, ``Process(target=...)``, executor ``submit``) run in
  a forked/spawned interpreter: mutating module-level state there is
  invisible to the parent *and* breaks the ``jobs=1`` ≡ ``jobs=N``
  equivalence the sweep runner guarantees.  Workers take everything
  through their payload and return everything through their result.
  (Re-arming per-process infrastructure — e.g. enabling the tracer in
  a spawned worker — is a deliberate exception; annotate it.)
* **REP031** — ``async def`` bodies in the serve layer must not call
  blocking I/O (``open``, ``time.sleep``, ``np.load`` …) directly: one
  blocked coroutine stalls every connection on the loop.  Preload
  before the loop starts or push the work into an executor.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import FileContext
from ..diagnostics import Diagnostic
from ..engine import call_qualified, register_rule

__all__: list[str] = []

#: pool/executor methods whose first positional argument is a worker fn
_DISPATCH_METHODS = frozenset(
    {
        "map",
        "map_async",
        "imap",
        "imap_unordered",
        "starmap",
        "starmap_async",
        "apply",
        "apply_async",
        "submit",
    }
)

#: method names that mutate their receiver in place
_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "clear",
        "pop",
        "popitem",
        "remove",
        "discard",
        "setdefault",
        "enable",
        "disable",
        "reset",
        "register",
        "unregister",
        "write",
    }
)

_BLOCKING_CALLS = frozenset(
    {
        "open",
        "input",
        "time.sleep",
        "socket.socket",
        "socket.create_connection",
        "socket.getaddrinfo",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "numpy.load",
        "numpy.save",
        "numpy.savez",
        "numpy.savez_compressed",
        "json.load",
        "json.dump",
        "pickle.load",
        "pickle.dump",
        "urllib.request.urlopen",
        "requests.get",
        "requests.post",
        "shutil.copy",
        "shutil.copytree",
        "shutil.rmtree",
    }
)

_BLOCKING_METHODS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes", "mkdir", "unlink", "rename"}
)


def _diag(rule: str, ctx: FileContext, node: ast.AST, message: str) -> Diagnostic:
    return Diagnostic(
        rule, ctx.display, ctx.line(node), ctx.col(node), message, end_line=ctx.end_line(node)
    )


# ----------------------------------------------------------------------
# REP030 — worker functions must not mutate module state
# ----------------------------------------------------------------------
@register_rule(
    "REP030",
    name="worker-mutates-module-state",
    family="concurrency",
    summary="pool worker mutates module-level state",
)
def check_worker_mutation(ctx: FileContext) -> Iterator[Diagnostic]:
    if ctx.tree is None:
        return
    workers = _worker_names(ctx)
    if not workers:
        return
    module_names = _module_level_names(ctx.tree)
    for node in ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node.name in workers:
            yield from _scan_worker(ctx, node, module_names)


def _worker_names(ctx: FileContext) -> set[str]:
    """Names of functions handed to a pool/executor/Process in this file."""
    names: set[str] = set()
    for node in ctx.walk():
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Attribute) and node.func.attr in _DISPATCH_METHODS:
            if node.args and isinstance(node.args[0], ast.Name):
                names.add(node.args[0].id)
        qualified = call_qualified(ctx, node)
        leaf = qualified.rpartition(".")[2] if qualified else None
        if leaf in ("Process", "Pool", "ProcessPoolExecutor", "ThreadPoolExecutor"):
            for kw in node.keywords:
                if kw.arg in ("target", "initializer") and isinstance(kw.value, ast.Name):
                    names.add(kw.value.id)
    return names


def _module_level_names(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                names.update(_target_names(target))
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            names.update(_target_names(node.target))
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add((alias.asname or alias.name).partition(".")[0])
    return names


def _target_names(target: ast.expr) -> set[str]:
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        out: set[str] = set()
        for element in target.elts:
            out.update(_target_names(element))
        return out
    return set()


def _scan_worker(
    ctx: FileContext, fn: ast.AST, module_names: set[str]
) -> Iterator[Diagnostic]:
    declared_global: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
            yield _diag(
                "REP030",
                ctx,
                node,
                f"pool worker declares global {', '.join(node.names)}; "
                "worker-side writes are invisible to the parent process — "
                "pass state through the payload and the return value",
            )
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
                if not isinstance(node, ast.Delete)
                else node.targets
            )
            for target in targets:
                base = _subscript_base(target)
                if base is not None and base in module_names and base not in declared_global:
                    yield _diag(
                        "REP030",
                        ctx,
                        node,
                        f"pool worker writes into module-level {base!r}; the "
                        "mutation exists only in the worker process",
                    )
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr not in _MUTATORS:
                continue
            root = _attribute_root(node.func.value)
            if root is not None and root in module_names:
                yield _diag(
                    "REP030",
                    ctx,
                    node,
                    f"pool worker calls .{node.func.attr}() on module-level "
                    f"{root!r}; the mutation exists only in the worker process",
                )


def _subscript_base(target: ast.expr) -> str | None:
    """Module-level name written through a subscript/attribute store."""
    node = target
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _attribute_root(node: ast.expr) -> str | None:
    while isinstance(node, ast.Attribute):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


# ----------------------------------------------------------------------
# REP031 — no blocking I/O directly inside ``async def``
# ----------------------------------------------------------------------
@register_rule(
    "REP031",
    name="blocking-io-in-async",
    family="concurrency",
    summary="blocking call directly inside an async def",
)
def check_blocking_async(ctx: FileContext) -> Iterator[Diagnostic]:
    if ctx.tree is None:
        return
    for node in ctx.walk():
        if isinstance(node, ast.AsyncFunctionDef):
            for stmt in node.body:
                yield from _scan_async(ctx, stmt)


def _scan_async(ctx: FileContext, node: ast.AST) -> Iterator[Diagnostic]:
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return  # nested defs run when called, not on this coroutine's path
    if isinstance(node, ast.Call):
        reason = _blocking_reason(ctx, node)
        if reason is not None:
            yield _diag(
                "REP031",
                ctx,
                node,
                f"{reason} blocks the event loop; preload before serving or "
                "run it in an executor (loop.run_in_executor)",
            )
    for child in ast.iter_child_nodes(node):
        yield from _scan_async(ctx, child)


def _blocking_reason(ctx: FileContext, node: ast.Call) -> str | None:
    qualified = call_qualified(ctx, node)
    if qualified in _BLOCKING_CALLS:
        return f"{qualified}(...)"
    if (
        isinstance(node.func, ast.Attribute)
        and node.func.attr in _BLOCKING_METHODS
        and (qualified is None or not qualified.startswith("asyncio"))
    ):
        return f".{node.func.attr}(...)"
    return None
