"""REP00x — determinism rules.

The repo's correctness claims are reproducibility claims: bit-exact
baselines, content-keyed store entries, seeded workloads.  These rules
statically ban the classic ways a change silently breaks them:

* **REP001** — module-level numpy RNG calls (``np.random.shuffle``)
  draw from hidden global state; every draw must come from a seeded
  ``np.random.default_rng(seed)`` / ``Generator``.
* **REP002** — the stdlib ``random`` module's top-level functions share
  one process-global state; only seeded ``random.Random(seed)``
  instances are allowed (and nothing in the package should need even
  that — numpy generators are the house RNG).
* **REP003** — wall-clock reads (``time.time``, ``datetime.now``) in
  any module reachable from the store/core/graphs subsystems or the
  sweep record emitter: artifact content and identity must be pure
  functions of their canonical key.  Monotonic duration clocks
  (``perf_counter``/``monotonic``) are fine — durations are telemetry,
  not identity.
* **REP004** — iteration over unordered collections (sets, unsorted
  directory listings) in determinism-scoped modules: set order varies
  with hash randomization and history, directory order with the
  filesystem.  Wrap in ``sorted(...)`` or iterate an ordered source.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import FileContext
from ..diagnostics import Diagnostic
from ..engine import call_qualified, register_rule

__all__: list[str] = []

#: ``numpy.random`` attributes that *construct seeded state* (allowed)
#: rather than drawing from the hidden global generator (banned)
_NP_RANDOM_OK = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
        "RandomState",  # legacy, but explicitly seeded construction
    }
)

#: stdlib ``random`` attributes that construct seeded instances
_STDLIB_RANDOM_OK = frozenset({"Random"})

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

_LISTING_CALLS = frozenset({"os.listdir", "os.scandir", "glob.glob", "glob.iglob"})
_LISTING_METHODS = frozenset({"iterdir", "glob", "rglob"})


def _diag(rule: str, ctx: FileContext, node: ast.AST, message: str) -> Diagnostic:
    return Diagnostic(
        rule, ctx.display, ctx.line(node), ctx.col(node), message, end_line=ctx.end_line(node)
    )


@register_rule(
    "REP001",
    name="numpy-global-rng",
    family="determinism",
    summary="call into numpy's hidden global RNG",
)
def check_numpy_global_rng(ctx: FileContext) -> Iterator[Diagnostic]:
    for node in ctx.walk():
        if not isinstance(node, ast.Call):
            continue
        qualified = call_qualified(ctx, node)
        if qualified is None or not qualified.startswith("numpy.random."):
            continue
        leaf = qualified.rpartition(".")[2]
        if leaf in _NP_RANDOM_OK:
            continue
        yield _diag(
            "REP001",
            ctx,
            node,
            f"np.random.{leaf} draws from the process-global RNG; use a "
            "seeded np.random.default_rng(seed) Generator",
        )


@register_rule(
    "REP002",
    name="stdlib-global-random",
    family="determinism",
    summary="stdlib random module-level call",
)
def check_stdlib_random(ctx: FileContext) -> Iterator[Diagnostic]:
    for node in ctx.walk():
        if not isinstance(node, ast.Call):
            continue
        qualified = call_qualified(ctx, node)
        if qualified is None or not qualified.startswith("random."):
            continue
        leaf = qualified.rpartition(".")[2]
        if leaf in _STDLIB_RANDOM_OK:
            continue
        yield _diag(
            "REP002",
            ctx,
            node,
            f"random.{leaf} shares process-global state; construct a seeded "
            "random.Random(seed) (or better, a numpy Generator)",
        )


@register_rule(
    "REP003",
    name="wall-clock-read",
    family="determinism",
    summary="wall-clock read in a determinism-scoped module",
    scopes=("determinism",),
)
def check_wall_clock(ctx: FileContext) -> Iterator[Diagnostic]:
    for node in ctx.walk():
        if not isinstance(node, ast.Call):
            continue
        qualified = call_qualified(ctx, node)
        if qualified in _WALL_CLOCK:
            yield _diag(
                "REP003",
                ctx,
                node,
                f"{qualified} read in a module reachable from artifact "
                "machinery; artifact content must not depend on the clock "
                "(durations may use time.perf_counter)",
            )


@register_rule(
    "REP004",
    name="unordered-iteration",
    family="determinism",
    summary="iteration order depends on set/filesystem ordering",
    scopes=("determinism",),
)
def check_unordered_iteration(ctx: FileContext) -> Iterator[Diagnostic]:
    for node in ctx.walk():
        iters: list[ast.expr] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
        for expr in iters:
            reason = _unordered_reason(ctx, expr)
            if reason is not None:
                yield _diag(
                    "REP004",
                    ctx,
                    expr,
                    f"iterating {reason} has no deterministic order here; "
                    "wrap in sorted(...) or iterate an ordered source",
                )


def _unordered_reason(ctx: FileContext, expr: ast.expr) -> str | None:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return "a set literal"
    if not isinstance(expr, ast.Call):
        return None
    qualified = call_qualified(ctx, expr)
    if qualified in ("set", "frozenset"):
        return f"{qualified}(...)"
    if qualified in _LISTING_CALLS:
        return f"{qualified}(...) (filesystem order)"
    if (
        isinstance(expr.func, ast.Attribute)
        and expr.func.attr in _LISTING_METHODS
        and qualified not in _LISTING_CALLS  # glob.glob handled above
    ):
        return f".{expr.func.attr}(...) (filesystem order)"
    return None
