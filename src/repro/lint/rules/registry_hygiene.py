"""REP01x — registry hygiene.

Every component axis of the package — algorithms, patterns, topologies,
workloads, engines, metrics — is addressed by spec strings through the
unified registries (:mod:`repro.registry`).  A typo'd spec literal
(``"d-modk"``) is a latent runtime error: in a test it may hide behind
a broad ``pytest.raises``, in a doc fence it silently rots.  These
rules resolve every string literal passed to a resolution entry point
(and every spec list in a sweep-grid keyword) against the *live*
registries at lint time:

* **REP010** — the spec parses but names no registered component;
* **REP011** — the spec does not parse under the DSL at all.

Names registered *in the same file* (test components, ad-hoc builders)
are exempt, so registration-driven tests lint clean; tests that
deliberately pass unknown names to assert the error message carry a
``# repro: noqa[REP010]`` stating that intent.

Both rules also run over python code fences in markdown docs.
"""

from __future__ import annotations

import ast
from difflib import get_close_matches
from typing import Callable, Iterator

from ..context import FileContext
from ..diagnostics import Diagnostic
from ..engine import call_qualified, register_rule

__all__: list[str] = []

#: function/constructor leaf name -> [(position, keyword, family), ...]
_SPEC_SITES: dict[str, list[tuple[int | None, str, str]]] = {
    "make_algorithm": [(0, "name", "algorithm")],
    "resolve_pattern": [(0, "spec", "pattern")],
    "resolve_topology": [(0, "spec", "topology")],
    "resolve_workload": [(0, "workload", "workload")],
    "resolve_engine": [(0, "name", "engine")],
    "parse_xgft": [(0, "spec", "topology")],
    "Scenario": [
        (0, "topology", "topology"),
        (1, "pattern", "pattern"),
        (2, "algorithm", "algorithm"),
        (None, "workload", "workload"),
    ],
    "open_table": [(0, "topology", "topology"), (1, "algorithm", "algorithm")],
    "store_table": [(1, "algorithm", "algorithm")],
}

#: keyword lists of grid specs (SweepSpec, dynamic_grid_spec, ...)
_LIST_KEYWORDS: dict[str, str] = {
    "topologies": "topology",
    "patterns": "pattern",
    "algorithms": "algorithm",
    "workloads": "workload",
    "metrics": "metric",
}

#: calls that *register* names; their string args are local definitions
_REGISTERING_CONSTRUCTORS = frozenset({"Engine", "Metric"})

_placeholder = "none"


@register_rule(
    "REP010",
    name="unregistered-spec",
    family="registry",
    summary="spec literal names no registered component",
    docs=True,
)
def check_unregistered(ctx: FileContext) -> Iterator[Diagnostic]:
    yield from _check_specs(ctx, want="REP010")


@register_rule(
    "REP011",
    name="malformed-spec",
    family="registry",
    summary="spec literal does not parse under the spec DSL",
    docs=True,
)
def check_malformed(ctx: FileContext) -> Iterator[Diagnostic]:
    yield from _check_specs(ctx, want="REP011")


def _check_specs(ctx: FileContext, want: str) -> Iterator[Diagnostic]:
    local_names = _locally_registered(ctx)
    for node in ctx.walk():
        if not isinstance(node, ast.Call):
            continue
        for literal, family in _spec_literals(ctx, node):
            text = literal.value
            if text == _placeholder:
                continue
            finding = _validate(family, text)
            if finding is None:
                continue
            rule, message = finding
            if rule != want:
                continue
            if rule == "REP010" and _spec_name(text) in local_names:
                continue
            yield Diagnostic(
                rule,
                ctx.display,
                ctx.line(literal),
                ctx.col(literal),
                message,
                end_line=ctx.end_line(literal),
            )


def _spec_literals(
    ctx: FileContext, node: ast.Call
) -> Iterator[tuple[ast.Constant, str]]:
    qualified = call_qualified(ctx, node)
    leaf = qualified.rpartition(".")[2] if qualified else None
    if leaf in _SPEC_SITES:
        for position, keyword, family in _SPEC_SITES[leaf]:
            literal = _string_at(node, position, keyword)
            if literal is not None:
                yield literal, family
    if qualified is not None and qualified.endswith("StoreKey.make"):
        for position, keyword, family in (
            (0, "topology", "topology"),
            (1, "algorithm", "algorithm"),
        ):
            literal = _string_at(node, position, keyword)
            if literal is not None:
                yield literal, family
    for kw in node.keywords:
        if kw.arg == "engine" and _is_str(kw.value):
            yield kw.value, "engine"
        elif kw.arg in _LIST_KEYWORDS and isinstance(kw.value, (ast.List, ast.Tuple, ast.Set)):
            for element in kw.value.elts:
                if _is_str(element):
                    yield element, _LIST_KEYWORDS[kw.arg]


def _string_at(node: ast.Call, position: int | None, keyword: str) -> ast.Constant | None:
    if position is not None and len(node.args) > position:
        arg = node.args[position]
        return arg if _is_str(arg) else None
    for kw in node.keywords:
        if kw.arg == keyword and _is_str(kw.value):
            return kw.value
    return None


def _is_str(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, str)


def _locally_registered(ctx: FileContext) -> set[str]:
    """String names registered (or unregistered) in this very file."""
    names: set[str] = set()
    for node in ctx.walk():
        if not isinstance(node, ast.Call):
            continue
        qualified = call_qualified(ctx, node)
        leaf = qualified.rpartition(".")[2] if qualified else None
        registering = (leaf is not None and "register" in leaf) or (
            isinstance(node.func, ast.Attribute) and "register" in node.func.attr
        )
        if registering or leaf in _REGISTERING_CONSTRUCTORS:
            literal = _string_at(node, 0 if registering else None, "name")
            if literal is not None:
                names.add(_spec_name(literal.value))
    return names


def _spec_name(text: str) -> str:
    return text.strip().partition("(")[0].strip().lower()


# ----------------------------------------------------------------------
# Live-registry validation (lazy: pulls the whole component universe)
# ----------------------------------------------------------------------
_VALIDATORS: dict[str, Callable[[str], tuple[str, str] | None]] | None = None


def _validate(family: str, text: str) -> tuple[str, str] | None:
    global _VALIDATORS
    if _VALIDATORS is None:
        _VALIDATORS = _build_validators()
    validator = _VALIDATORS.get(family)
    return validator(text) if validator is not None else None


def _build_validators() -> dict[str, Callable[[str], tuple[str, str] | None]]:
    # importing the facade wires every registry (graphs included)
    from ... import api as _api  # noqa: F401
    from ...core.factory import ALGORITHMS
    from ...metrics import METRICS
    from ...patterns.registry import PATTERNS, _parse_pattern_spec
    from ...registry import parse_spec
    from ...sim.engines import ENGINES
    from ...topology.registry import TOPOLOGIES
    from ...topology.xgft import parse_xgft
    from ...workloads.generators import WORKLOADS

    def named(kind: str, registry, parse) -> Callable[[str], tuple[str, str] | None]:
        def validator(text: str) -> tuple[str, str] | None:
            try:
                name, _ = parse(text)
            except ValueError as exc:
                return "REP011", f"{kind} spec {text!r} does not parse: {exc}"
            if name in registry:
                return None
            close = get_close_matches(name, registry.names(), n=3, cutoff=0.6)
            hint = f" (did you mean {', '.join(repr(c) for c in close)}?)" if close else ""
            return (
                "REP010",
                f"{kind} spec {text!r} names no registered {kind}{hint}",
            )

        return validator

    def pattern_parse(text: str) -> tuple[str, dict]:
        return _parse_pattern_spec(text.strip().lower())

    def topology(text: str) -> tuple[str, str] | None:
        stripped = text.strip()
        if stripped.lower().startswith(("xgft(", "xgft:")):
            try:
                raw = stripped if "(" in stripped else f"XGFT({stripped[5:]})"
                parse_xgft(raw if raw.lower().startswith("xgft(") else stripped)
            except (ValueError, IndexError) as exc:
                return "REP011", f"topology spec {text!r} does not parse: {exc}"
            return None
        return named("topology", TOPOLOGIES, parse_spec)(text)

    def metric(text: str) -> tuple[str, str] | None:
        if text in METRICS:
            return None
        close = get_close_matches(text, METRICS.names(), n=3, cutoff=0.6)
        hint = f" (did you mean {', '.join(repr(c) for c in close)}?)" if close else ""
        return "REP010", f"metric {text!r} is not registered{hint}"

    def engine(text: str) -> tuple[str, str] | None:
        if text in ENGINES:
            return None
        close = get_close_matches(text, ENGINES.names(), n=3, cutoff=0.6)
        hint = f" (did you mean {', '.join(repr(c) for c in close)}?)" if close else ""
        return "REP010", f"engine {text!r} is not registered{hint}"

    return {
        "algorithm": named("algorithm", ALGORITHMS, parse_spec),
        "pattern": named("pattern", PATTERNS, pattern_parse),
        "topology": topology,
        "workload": named("workload", WORKLOADS, parse_spec),
        "engine": engine,
        "metric": metric,
    }
