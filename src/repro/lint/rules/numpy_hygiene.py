"""REP04x — numpy hygiene in simulation hot paths.

The fluid engines keep their state in preallocated arrays sized by
link count × flow count; these rules police the two silent dtype traps
in that code:

* **REP040** — ``np.zeros``/``ones``/``empty``/``full`` without an
  explicit ``dtype=`` default to float64.  In a hot path that doubles
  memory traffic over float32 *and* hides intent: when a later change
  switches the engine's working dtype, implicit allocations silently
  upcast every arithmetic result back to float64.
* **REP041** — ``.astype(<narrower dtype>)`` without ``casting=`` can
  silently wrap integers and round floats.  State the contract:
  ``casting="safe"`` where the values are known to fit, or an explicit
  ``casting="unsafe"`` (with a bounds check nearby) where narrowing is
  the point.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import FileContext
from ..diagnostics import Diagnostic
from ..engine import call_qualified, has_keyword, register_rule

__all__: list[str] = []

_ALLOCATORS = frozenset({"numpy.zeros", "numpy.ones", "numpy.empty", "numpy.full"})

#: dtypes narrower than the float64/int64 house defaults
_NARROW_ATTRS = frozenset(
    {
        "numpy.float32",
        "numpy.float16",
        "numpy.int32",
        "numpy.int16",
        "numpy.int8",
        "numpy.uint32",
        "numpy.uint16",
        "numpy.uint8",
    }
)
_NARROW_STRINGS = frozenset(
    {
        "float32",
        "float16",
        "int32",
        "int16",
        "int8",
        "uint32",
        "uint16",
        "uint8",
        "f4",
        "f2",
        "i4",
        "i2",
        "i1",
        "u4",
        "u2",
        "u1",
        "<f4",
        "<f2",
        "<i4",
        "<i2",
        "<u4",
        "<u2",
    }
)


def _diag(rule: str, ctx: FileContext, node: ast.AST, message: str) -> Diagnostic:
    return Diagnostic(
        rule, ctx.display, ctx.line(node), ctx.col(node), message, end_line=ctx.end_line(node)
    )


@register_rule(
    "REP040",
    name="implicit-float64-allocation",
    family="numpy",
    summary="array allocation without an explicit dtype",
    scopes=("sim",),
)
def check_implicit_dtype(ctx: FileContext) -> Iterator[Diagnostic]:
    for node in ctx.walk():
        if not isinstance(node, ast.Call):
            continue
        qualified = call_qualified(ctx, node)
        if qualified not in _ALLOCATORS:
            continue
        # np.full's second positional argument fixes the dtype too
        if has_keyword(node, "dtype"):
            continue
        if qualified == "numpy.full" and len(node.args) >= 2 and _typed_fill(node.args[1]):
            continue
        leaf = qualified.rpartition(".")[2]
        yield _diag(
            "REP040",
            ctx,
            node,
            f"np.{leaf}(...) without dtype= allocates float64 in a hot "
            "path; state the working dtype explicitly",
        )


def _typed_fill(node: ast.expr) -> bool:
    """A fill value that already carries a dtype (np.float32(0) etc.)."""
    return isinstance(node, ast.Call)


@register_rule(
    "REP041",
    name="unvalidated-narrowing-cast",
    family="numpy",
    summary=".astype() to a narrower dtype without casting=",
    scopes=("sim",),
)
def check_narrowing_cast(ctx: FileContext) -> Iterator[Diagnostic]:
    for node in ctx.walk():
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "astype"
        ):
            continue
        if has_keyword(node, "casting"):
            continue
        target = _dtype_argument(node)
        if target is None:
            continue
        narrow = _narrow_name(ctx, target)
        if narrow is None:
            continue
        yield _diag(
            "REP041",
            ctx,
            node,
            f".astype({narrow}) narrows without casting=; pass "
            "casting=\"safe\" (or an explicit casting=\"unsafe\" beside a "
            "bounds check) so overflow is a decision, not an accident",
        )


def _dtype_argument(node: ast.Call) -> ast.expr | None:
    if node.args:
        return node.args[0]
    for kw in node.keywords:
        if kw.arg == "dtype":
            return kw.value
    return None


def _narrow_name(ctx: FileContext, node: ast.expr) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value if node.value in _NARROW_STRINGS else None
    qualified = ctx.qualified(node)
    if qualified in _NARROW_ATTRS:
        return "np." + qualified.rpartition(".")[2]
    return None
