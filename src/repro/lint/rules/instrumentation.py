"""REP02x — instrumentation discipline.

The observability layer (:mod:`repro.obs`) is designed to be free when
off and honest when on.  That only holds if call sites follow three
conventions:

* **REP020** — ``TRACER.span(...)`` is a context manager; calling it
  as a bare statement opens a span that is never closed, corrupting
  the span tree.  The only legal shapes are ``with TRACER.span(...)``
  (possibly behind an ``... if trace else nullcontext()`` conditional)
  and returning the span for a caller to enter.
* **REP021** — obs calls inside loops must sit behind a cheap guard
  captured *outside* the loop (the ``self._obs_on and TRACER.enabled``
  idiom): attribute lookups and no-op calls per iteration are exactly
  the overhead the paper's timing methodology excludes.
* **REP022** — counters are monotone.  ``.inc(-n)`` or ``.dec()`` on a
  counter turns a rate metric into a lie; gauges exist for values that
  go down.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import FileContext
from ..diagnostics import Diagnostic
from ..engine import call_qualified, in_with_context, register_rule

__all__: list[str] = []

#: identifier substrings that mark a conditional as an obs on/off guard
_GUARD_TOKENS = ("obs", "active", "trace", "tracing", "span", "enabled", "telemetry")

#: repro.obs entry points that *emit* per call (vs. pure aggregation
#: helpers like merge_span_aggregates, which are loop-safe)
_EMIT_LEAFS = frozenset(
    {"span", "counter", "gauge", "histogram", "event", "record", "observe", "inc"}
)


def _diag(rule: str, ctx: FileContext, node: ast.AST, message: str) -> Diagnostic:
    return Diagnostic(
        rule, ctx.display, ctx.line(node), ctx.col(node), message, end_line=ctx.end_line(node)
    )


def _is_span_call(ctx: FileContext, node: ast.Call) -> bool:
    if not (isinstance(node.func, ast.Attribute) and node.func.attr == "span"):
        return False
    qualified = call_qualified(ctx, node)
    if qualified is None:
        return False
    head = qualified.rpartition(".")[0]
    return (
        head == "TRACER"
        or head.endswith(".TRACER")
        or head.lower().endswith("tracer")
        or qualified.startswith("repro.obs")
    )


def _is_obs_emission(ctx: FileContext, node: ast.Call) -> bool:
    if _is_span_call(ctx, node):
        return True
    qualified = call_qualified(ctx, node)
    return (
        qualified is not None
        and qualified.startswith("repro.obs")
        and qualified.rpartition(".")[2] in _EMIT_LEAFS
    )


@register_rule(
    "REP020",
    name="span-not-context-manager",
    family="instrumentation",
    summary="TRACER.span(...) used outside a with/return",
)
def check_span_context(ctx: FileContext) -> Iterator[Diagnostic]:
    for node in ctx.walk():
        if not (isinstance(node, ast.Call) and _is_span_call(ctx, node)):
            continue
        if in_with_context(ctx, node) or _returned_or_yielded(ctx, node):
            continue
        yield _diag(
            "REP020",
            ctx,
            node,
            "span opened outside a context manager; use "
            "'with TRACER.span(...)' (or return the span for the caller "
            "to enter) so it always closes",
        )


def _returned_or_yielded(ctx: FileContext, node: ast.AST) -> bool:
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, (ast.Return, ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return False
        if isinstance(ancestor, ast.stmt):
            return False
    return False


@register_rule(
    "REP021",
    name="unguarded-hot-loop-obs",
    family="instrumentation",
    summary="obs call in a loop without an enabled-state guard",
    scopes=("src",),
    exclude_scopes=("obs", "test"),
)
def check_hot_loop_guard(ctx: FileContext) -> Iterator[Diagnostic]:
    for node in ctx.walk():
        if not (isinstance(node, ast.Call) and _is_obs_emission(ctx, node)):
            continue
        if _enclosing_loop(ctx, node) is None:
            continue
        if _guarded(ctx, node):
            continue
        yield _diag(
            "REP021",
            ctx,
            node,
            "telemetry call inside a loop without an enabled-state guard; "
            "capture obs.active()/TRACER.enabled once outside the loop and "
            "gate the call (the 'self._obs_on and TRACER.enabled' idiom)",
        )


def _enclosing_loop(ctx: FileContext, node: ast.AST) -> ast.AST | None:
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, (ast.For, ast.AsyncFor, ast.While)):
            return ancestor
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return None
    return None


def _guarded(ctx: FileContext, node: ast.AST) -> bool:
    """Any If/IfExp on the path to the function boundary testing an obs
    switch?  The guard may sit above the loop (the preferred idiom —
    captured once) or inside it."""
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return False
        if isinstance(ancestor, (ast.If, ast.IfExp)) and _mentions_guard(ancestor.test):
            return True
    return False


def _mentions_guard(test: ast.expr) -> bool:
    for sub in ast.walk(test):
        name: str | None = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        if name is not None and any(tok in name.lower() for tok in _GUARD_TOKENS):
            return True
    return False


@register_rule(
    "REP022",
    name="counter-decrement",
    family="instrumentation",
    summary="monotone counter decremented",
    exclude_scopes=("obs",),
)
def check_counter_decrement(ctx: FileContext) -> Iterator[Diagnostic]:
    for node in ctx.walk():
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        receiver = node.func.value
        if node.func.attr == "inc" and node.args and _is_negative(node.args[0]):
            yield _diag(
                "REP022",
                ctx,
                node,
                "counter incremented by a negative amount; counters are "
                "monotone — use a gauge for values that go down",
            )
        elif node.func.attr == "dec" and _counterish(ctx, receiver):
            yield _diag(
                "REP022",
                ctx,
                node,
                ".dec() on a counter; counters are monotone — use a gauge "
                "for values that go down",
            )


def _is_negative(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return True
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
        and node.value < 0
    )


def _counterish(ctx: FileContext, receiver: ast.expr) -> bool:
    if isinstance(receiver, ast.Call):
        inner = call_qualified(ctx, receiver)
        if inner is not None and inner.rpartition(".")[2] == "counter":
            return True
    name: str | None = None
    if isinstance(receiver, ast.Name):
        name = receiver.id
    elif isinstance(receiver, ast.Attribute):
        name = receiver.attr
    return name is not None and ("counter" in name.lower() or name.startswith("_c_"))
