"""The bundled rule pack.

Importing this package registers every rule with
:data:`repro.lint.engine.LINT_RULES`.  Third-party packs can do the
same — register via :func:`repro.lint.engine.register_rule` before
calling :func:`repro.lint.run_lint`.
"""

from __future__ import annotations

from typing import Iterator

from ..context import FileContext
from ..diagnostics import Diagnostic
from ..engine import register_rule
from . import (  # noqa: F401  (registration side effects)
    concurrency,
    determinism,
    instrumentation,
    numpy_hygiene,
    registry_hygiene,
)

__all__: list[str] = []


# The meta rules are emitted by the engine itself (parse failures and
# stale suppressions have no per-node check to run); they are
# registered so they appear in --list-rules, the docs catalogue, and
# rule selection like every other id.
@register_rule(
    "REP000",
    name="parse-error",
    family="meta",
    summary="file is unreadable or does not parse",
)
def _parse_error_placeholder(ctx: FileContext) -> Iterator[Diagnostic]:
    return iter(())


@register_rule(
    "REP090",
    name="unused-suppression",
    family="meta",
    summary="'# repro: noqa' suppresses nothing",
)
def _unused_suppression_placeholder(ctx: FileContext) -> Iterator[Diagnostic]:
    return iter(())
