"""Domain-aware static analysis for the repro package.

``repro lint`` enforces the invariants the test suite cannot see until
they bite: determinism (seeded RNG, clock- and order-independence of
artifact content), registry hygiene (every spec literal resolves),
instrumentation discipline (spans close, hot loops stay cheap,
counters stay monotone), concurrency rules (pool workers are pure,
async handlers never block), and numpy dtype hygiene in the simulation
hot paths.

Programmatic entry point::

    from repro.lint import run_lint
    result = run_lint(["src", "tests"])
    assert result.ok, result.format_text()

The rule catalogue lives in ``docs/lint.md``; suppress a finding with
``# repro: noqa[REP001]`` on any line of the flagged statement (unused
suppressions are themselves findings).
"""

from __future__ import annotations

from .context import DETERMINISM_ROOTS, FileContext, ProjectScope, extract_fences
from .diagnostics import (
    SCHEMA_VERSION,
    Diagnostic,
    LintResult,
    result_from_json,
    result_to_json,
)
from .engine import (
    LINT_RULES,
    Rule,
    discover,
    register_rule,
    rule_ids,
    run_lint,
    select_rules,
)

__all__ = [
    "DETERMINISM_ROOTS",
    "Diagnostic",
    "FileContext",
    "LINT_RULES",
    "LintResult",
    "ProjectScope",
    "Rule",
    "SCHEMA_VERSION",
    "discover",
    "extract_fences",
    "register_rule",
    "result_from_json",
    "result_to_json",
    "rule_ids",
    "run_lint",
    "select_rules",
]
