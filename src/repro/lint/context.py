"""Per-file and cross-file analysis context for the lint engine.

:class:`FileContext` wraps one parsed source unit: AST with a parent
map, resolved import aliases (so a rule asks for the *qualified* name
``numpy.random.seed`` regardless of the ``import numpy as np`` /
``from numpy import random`` spelling at the call site), the
``# repro: noqa[...]`` suppression table, and the file's *scope tags*.

Scope tags drive rule applicability:

``src``
    a module of the ``repro`` package (under ``src/repro/``);
``test``
    anything under a ``tests`` directory or named ``test_*.py``;
``sim`` / ``serve`` / ``obs``
    the subsystem submodules, by dotted module name;
``determinism``
    modules whose behavior can reach a reproducibility artifact —
    ``repro.store``, ``repro.core``, ``repro.graphs``,
    ``repro.experiments.sweep`` and (via :class:`ProjectScope`'s import
    graph) everything they transitively import inside the package.

A fixture or a one-off file can pin its tags explicitly with a
``# repro: scope[sim,determinism]`` comment, which *replaces* the
computed tags — that is how the rule fixtures under ``tests/lint/``
exercise path-scoped rules from outside the package tree.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from collections import deque
from pathlib import Path

__all__ = [
    "FileContext",
    "ProjectScope",
    "extract_fences",
    "module_name_for",
]

#: ``# repro: noqa[REP001,REP010]`` — suppress the named rules on this
#: line.  Directives are anchored at the start of the comment (matched,
#: not searched) so prose that merely *mentions* the syntax — like this
#: very comment — is not a directive.
_NOQA_RULES = re.compile(r"#\s*repro:\s*noqa\[([A-Za-z0-9_,\s]+)\]")
#: ``# repro: noqa`` — suppress every rule on this line
_NOQA_ALL = re.compile(r"#\s*repro:\s*noqa(?!\[)")
#: ``# repro: scope[sim,determinism]`` — override the file's scope tags
_SCOPE = re.compile(r"#\s*repro:\s*scope\[([a-z,\s-]*)\]")

#: dotted-module prefixes whose behavior reaches a reproducibility
#: artifact (route tables, store entries, sweep records)
DETERMINISM_ROOTS = ("repro.store", "repro.core", "repro.graphs", "repro.experiments.sweep")


def module_name_for(path: Path) -> str | None:
    """The dotted ``repro.*`` module name of ``path``, or ``None``.

    Derived purely from the path (``.../src/repro/sim/fluid.py`` →
    ``repro.sim.fluid``), so it works on uninstalled trees and on
    fixture copies alike.
    """
    parts = path.parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro" and i and parts[i - 1] == "src":
            dotted = list(parts[i:-1])
            stem = path.stem
            if stem != "__init__":
                dotted.append(stem)
            return ".".join(dotted)
    return None


class ProjectScope:
    """The cross-file side of a lint run: the package import graph.

    Built once from every ``repro.*`` module in the linted set; answers
    "is this module reachable from a determinism root?" by walking the
    roots' transitive imports.  Files outside the package (tests,
    fixtures, fences) are never determinism-scoped by the graph — they
    opt in via the ``# repro: scope[...]`` directive.
    """

    def __init__(self, imports: dict[str, set[str]]):
        self._imports = imports
        self._determinism = self._reach(DETERMINISM_ROOTS)

    @staticmethod
    def build(paths: list[Path]) -> "ProjectScope":
        imports: dict[str, set[str]] = {}
        for path in paths:
            module = module_name_for(path)
            if module is None:
                continue
            try:
                tree = ast.parse(path.read_text(encoding="utf-8"))
            except (SyntaxError, OSError, UnicodeDecodeError):
                continue
            imports[module] = _repro_imports(tree, module)
        return ProjectScope(imports)

    def _reach(self, roots: tuple[str, ...]) -> set[str]:
        # seed with every known module under a root prefix, then close
        # over the import edges (a package import pulls its __init__,
        # whose own imports are edges here too)
        seen: set[str] = set()
        queue: deque[str] = deque(
            m for m in self._imports if m.startswith(roots) or m in roots
        )
        while queue:
            module = queue.popleft()
            if module in seen:
                continue
            seen.add(module)
            for imported in self._imports.get(module, ()):
                # an import of a package also executes its __init__:
                # repro.store -> repro.store.__init__'s imports are the
                # same key (module_name_for maps __init__ to the package)
                if imported not in seen:
                    queue.append(imported)
                # importing repro.a.b implicitly imports repro.a
                parent = imported.rpartition(".")[0]
                if parent and parent not in seen and parent in self._imports:
                    queue.append(parent)
        return seen

    def determinism_scoped(self, module: str | None) -> bool:
        if module is None:
            return False
        if module.startswith(DETERMINISM_ROOTS) or module in DETERMINISM_ROOTS:
            return True
        return module in self._determinism


def _repro_imports(tree: ast.Module, module: str) -> set[str]:
    """Every ``repro.*`` module ``module`` imports (relative resolved)."""
    out: set[str] = set()
    package_parts = module.split(".")
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    out.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            base: str | None
            if node.level:
                # relative import: climb `level` packages from here
                # (level=1 from repro.a.b means package repro.a)
                anchor = package_parts[: len(package_parts) - node.level]
                if not anchor:
                    continue
                base = ".".join(anchor + ([node.module] if node.module else []))
            else:
                base = node.module
            if base is None or not (base == "repro" or base.startswith("repro.")):
                continue
            out.add(base)
            # `from repro.a import b` may mean module repro.a.b
            for alias in node.names:
                out.add(f"{base}.{alias.name}")
    return out


class FileContext:
    """One parsed source unit plus everything rules ask about it."""

    def __init__(
        self,
        path: Path | str,
        source: str,
        *,
        display: str | None = None,
        line_offset: int = 0,
        scope: ProjectScope | None = None,
        kind: str = "python",
    ):
        self.path = Path(path)
        self.display = display if display is not None else str(path)
        self.source = source
        self.kind = kind
        self.line_offset = line_offset
        self.tree: ast.Module | None = None
        self.parse_error: SyntaxError | None = None
        try:
            self.tree = ast.parse(source)
        except SyntaxError as exc:
            self.parse_error = exc
        self.module = module_name_for(self.path)
        self._parents: dict[ast.AST, ast.AST] | None = None
        self._aliases: dict[str, str] | None = None
        self.noqa: dict[int, set[str] | None] = {}
        self.noqa_used: dict[int, set[str]] = {}
        self._scope_directive: set[str] | None = None
        self._collect_comments()
        self.scopes = self._compute_scopes(scope)

    # -- comments: suppressions and scope directives --------------------
    def _collect_comments(self) -> None:
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            comments = [
                (tok.start[0], tok.string)
                for tok in tokens
                if tok.type == tokenize.COMMENT
            ]
        except (tokenize.TokenError, IndentationError, SyntaxError):
            comments = [
                (i + 1, line[line.index("#") :])
                for i, line in enumerate(self.source.splitlines())
                if "#" in line
            ]
        for line, text in comments:
            match = _NOQA_RULES.match(text)
            if match:
                rules = {r.strip().upper() for r in match.group(1).split(",") if r.strip()}
                if rules:
                    self.noqa[line] = rules
                continue
            if _NOQA_ALL.match(text):
                self.noqa[line] = None  # blanket: every rule
                continue
            match = _SCOPE.match(text)
            if match:
                self._scope_directive = {
                    t.strip() for t in match.group(1).split(",") if t.strip()
                }

    def _compute_scopes(self, scope: ProjectScope | None) -> frozenset[str]:
        if self._scope_directive is not None:
            return frozenset(self._scope_directive)
        tags: set[str] = set()
        parts = self.path.parts
        if self.module is not None:
            tags.add("src")
            for subsystem in ("sim", "serve", "obs", "store", "lint"):
                if self.module.startswith(f"repro.{subsystem}"):
                    tags.add(subsystem)
            if self.module.startswith(DETERMINISM_ROOTS) or (
                scope is not None and scope.determinism_scoped(self.module)
            ):
                tags.add("determinism")
        if "tests" in parts or self.path.name.startswith("test_"):
            tags.add("test")
            tags.discard("src")
        return frozenset(tags)

    # -- AST services ----------------------------------------------------
    @property
    def parents(self) -> dict[ast.AST, ast.AST]:
        if self._parents is None:
            self._parents = {}
            assert self.tree is not None
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    self._parents[child] = node
        return self._parents

    def ancestors(self, node: ast.AST):
        """Yield ``node``'s ancestors, innermost first."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    @property
    def aliases(self) -> dict[str, str]:
        """Local name -> dotted origin, from the file's imports.

        ``import numpy as np`` maps ``np -> numpy``; ``from time import
        time as now`` maps ``now -> time.time``; relative imports map
        into the resolved ``repro.*`` namespace when the file is a
        package module.
        """
        if self._aliases is None:
            self._aliases = {}
            if self.tree is not None:
                for node in ast.walk(self.tree):
                    if isinstance(node, ast.Import):
                        for alias in node.names:
                            local = alias.asname or alias.name.partition(".")[0]
                            target = alias.name if alias.asname else alias.name.partition(".")[0]
                            self._aliases[local] = target
                    elif isinstance(node, ast.ImportFrom):
                        base = self._resolve_from(node)
                        if base is None:
                            continue
                        for alias in node.names:
                            if alias.name == "*":
                                continue
                            local = alias.asname or alias.name
                            self._aliases[local] = f"{base}.{alias.name}"
        return self._aliases

    def _resolve_from(self, node: ast.ImportFrom) -> str | None:
        if not node.level:
            return node.module
        if self.module is None:
            return node.module  # relative import outside the package: best effort
        parts = self.module.split(".")
        anchor = parts[: len(parts) - node.level]
        if not anchor:
            return node.module
        return ".".join(anchor + ([node.module] if node.module else []))

    def qualified(self, node: ast.AST) -> str | None:
        """The dotted, alias-resolved name of a Name/Attribute chain.

        ``np.random.seed`` (with ``import numpy as np``) resolves to
        ``"numpy.random.seed"``; unresolvable shapes (calls on call
        results, subscripts) return ``None``.
        """
        chain: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            chain.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        chain.append(current.id)
        chain.reverse()
        head = self.aliases.get(chain[0], chain[0])
        return ".".join([head, *chain[1:]])

    def line(self, node: ast.AST) -> int:
        return getattr(node, "lineno", 1) + self.line_offset

    def end_line(self, node: ast.AST) -> int:
        end = getattr(node, "end_lineno", None) or getattr(node, "lineno", 1)
        return end + self.line_offset

    def col(self, node: ast.AST) -> int:
        return getattr(node, "col_offset", 0) + 1

    def walk(self):
        if self.tree is None:
            return iter(())
        return ast.walk(self.tree)


# ----------------------------------------------------------------------
# Markdown code fences (docs hygiene)
# ----------------------------------------------------------------------
_FENCE = re.compile(r"^(\s*)```\s*([A-Za-z0-9_+-]*)\s*$")
_DOCTEST_PREFIX = re.compile(r"^\s*(?:>>>|\.\.\.)\s?")


def extract_fences(text: str) -> list[tuple[int, str]]:
    """``(first_code_line, code)`` for every python-looking fence.

    Fences tagged with a non-python language are skipped; untagged and
    ``python``/``py``/``pycon`` fences are kept when they parse (prose
    or shell fragments inside untagged fences simply fail ``ast.parse``
    downstream and are dropped by the caller).  Doctest prompts are
    stripped, non-doctest output lines inside doctest blocks dropped.
    """
    fences: list[tuple[int, str]] = []
    lines = text.splitlines()
    in_fence = False
    lang = ""
    start = 0
    buffer: list[str] = []
    for i, line in enumerate(lines, start=1):
        match = _FENCE.match(line)
        if match and not in_fence:
            in_fence, lang, start, buffer = True, match.group(2).lower(), i + 1, []
            continue
        if match and in_fence:
            in_fence = False
            if lang in ("", "python", "py", "pycon"):
                code = _strip_doctest("\n".join(buffer))
                if code.strip():
                    fences.append((start, code))
            continue
        if in_fence:
            buffer.append(line)
    return fences


def _strip_doctest(code: str) -> str:
    lines = code.splitlines()
    if not any(line.lstrip().startswith(">>>") for line in lines):
        return code
    kept = [
        _DOCTEST_PREFIX.sub("", line)
        for line in lines
        if _DOCTEST_PREFIX.match(line)
    ]
    return "\n".join(kept)
