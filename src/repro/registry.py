"""The unified component registry and its shared spec DSL.

Every pluggable component family in the package — routing algorithms
(:data:`repro.core.factory.ALGORITHMS`), traffic patterns
(:data:`repro.patterns.registry.PATTERNS`), topology families
(:data:`repro.topology.registry.TOPOLOGIES`) and evaluation metrics
(:data:`repro.metrics.METRICS`) — is a :class:`Registry`: a named map
from component names to builders, extended by registration instead of
by editing engine internals.  Räcke & Schmid's *Compact Oblivious
Routing* frames an oblivious scheme as a reusable, pattern-independent
artifact; the registries make every such artifact (and everything it is
evaluated against) addressable by name.

All registries share one textual **spec DSL**::

    name                    a bare component name
    name(key=value, ...)    a parameterized component

``value`` parses as ``int`` when possible, then ``float``;
``true``/``false`` parse as ``bool``; anything else stays a string.
:func:`parse_spec` and :func:`format_spec` are exact inverses on
canonical specs (``parse_spec(format_spec(n, kw)) == (n, kw)``), which
is what lets run identities round-trip through JSON artifacts.
"""

from __future__ import annotations

from difflib import get_close_matches
from typing import Callable, Final, Generic, Iterator, Mapping, TypeVar, cast, overload

__all__ = [
    "Registry",
    "SpecValue",
    "parse_spec",
    "format_spec",
    "canonical_spec",
]

T = TypeVar("T")

#: the value types the spec DSL round-trips through text
SpecValue = bool | int | float | str


class _Missing:
    """Sentinel type distinguishing 'no object' from any registrant."""


_MISSING: Final = _Missing()


class Registry(Generic[T]):
    """A named component registry with decorator registration.

    ``kind`` is the human-readable component family name used in every
    diagnostic (``"unknown algorithm 'dijkstra'; available: ..."``).
    Registration collisions raise unless ``override=True`` is passed —
    overriding is deliberate (e.g. a study swapping a builder), never
    an accident.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._items: dict[str, T] = {}

    # -- registration ---------------------------------------------------
    @overload
    def register(self, name: str, *, override: bool = ...) -> Callable[[T], T]: ...

    @overload
    def register(self, name: str, obj: T, *, override: bool = ...) -> T: ...

    def register(
        self, name: str, obj: T | _Missing = _MISSING, *, override: bool = False
    ) -> T | Callable[[T], T]:
        """Register ``obj`` under ``name``; usable as a decorator.

        ::

            @PATTERNS.register("shift")
            def build_shift(num_leaves, d=1): ...

            ALGORITHMS.register("s-mod-k", builder)
        """
        if isinstance(obj, _Missing):

            def decorator(target: T) -> T:
                self.register(name, target, override=override)
                return target

            return decorator
        if not name or not isinstance(name, str):
            raise ValueError(f"a {self.kind} name must be a non-empty string")
        if name in self._items and not override:
            raise ValueError(
                f"{self.kind} {name!r} is already registered "
                "(pass override=True to replace it)"
            )
        self._items[name] = obj
        return obj

    def unregister(self, name: str) -> None:
        """Remove a registration (missing names raise ``ValueError``)."""
        try:
            del self._items[name]
        except KeyError:
            raise ValueError(f"{self.kind} {name!r} is not registered") from None

    # -- lookup ---------------------------------------------------------
    def get(self, name: str) -> T:
        """The registered component, or ``ValueError`` naming the options."""
        try:
            return self._items[name]
        except KeyError:
            close = get_close_matches(name, self.names(), n=3, cutoff=0.6)
            hint = f" (did you mean {', '.join(repr(c) for c in close)}?)" if close else ""
            raise ValueError(
                f"unknown {self.kind} {name!r}{hint}; "
                f"available: {', '.join(self.names())}"
            ) from None

    def names(self) -> tuple[str, ...]:
        """Registered names, sorted."""
        return tuple(sorted(self._items))

    def build(self, spec: str, *args: object, **extra: object) -> object:
        """Parse ``spec`` and call its builder: ``builder(*args, **kwargs, **extra)``.

        Spec parameters and ``extra`` must not collide — a duplicate
        keyword is a caller error, not something to silently resolve.
        """
        name, kwargs = parse_spec(spec)
        clash = sorted(set(kwargs) & set(extra))
        if clash:
            raise ValueError(
                f"parameter(s) {', '.join(clash)} of {spec!r} collide with "
                "caller-supplied keyword(s)"
            )
        builder = cast(Callable[..., object], self.get(name))
        return builder(*args, **kwargs, **extra)

    def __contains__(self, name: object) -> bool:
        return name in self._items

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._items))

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, {len(self)} entries)"


# ----------------------------------------------------------------------
# The shared spec DSL
# ----------------------------------------------------------------------
def parse_spec(spec: str) -> tuple[str, dict[str, SpecValue]]:
    """Split ``"name(key=value,...)"`` into ``(name, kwargs)``.

    The one spec parser behind every registry (algorithms, patterns,
    topology families, metrics).  Bare names parse to ``(name, {})``.
    Values parse as int when possible, then float; ``true``/``false``
    become bool; anything else stays a string.
    """
    spec = spec.strip()
    if "(" not in spec:
        if not spec:
            raise ValueError("empty component spec")
        return spec, {}
    if not spec.endswith(")"):
        raise ValueError(f"malformed spec {spec!r} (missing closing parenthesis)")
    name, _, arglist = spec[:-1].partition("(")
    name = name.strip()
    if not name:
        raise ValueError(f"malformed spec {spec!r} (missing component name)")
    kwargs: dict[str, SpecValue] = {}
    for item in filter(None, (s.strip() for s in arglist.split(","))):
        key, sep, value = item.partition("=")
        if not sep or not key.strip():
            raise ValueError(f"malformed parameter {item!r} in {spec!r}")
        kwargs[key.strip()] = _parse_value(value.strip())
    return name, kwargs


def _parse_value(text: str) -> SpecValue:
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def _format_value(key: str, value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)  # repr round-trips floats exactly
    if isinstance(value, str):
        text = value.strip()
        if text != value or not text:
            raise ValueError(f"string value {value!r} for {key!r} is not spec-safe")
        if any(c in text for c in "(),=") or any(c.isspace() for c in text):
            raise ValueError(f"string value {value!r} for {key!r} is not spec-safe")
        if _parse_value(text) != text:
            raise ValueError(
                f"string value {value!r} for {key!r} would re-parse as "
                f"{type(_parse_value(text)).__name__}"
            )
        return text
    raise ValueError(f"unsupported spec value type {type(value).__name__} for {key!r}")


def format_spec(name: str, kwargs: Mapping[str, object] | None = None) -> str:
    """The canonical spec string for ``(name, kwargs)``.

    Parameters are emitted in sorted key order, so equal components
    always format identically; :func:`parse_spec` inverts the result
    exactly.
    """
    name = name.strip()
    if not name or any(c in name for c in "(),=") or any(c.isspace() for c in name):
        raise ValueError(f"component name {name!r} is not spec-safe")
    if not kwargs:
        return name
    args = ",".join(f"{k}={_format_value(k, kwargs[k])}" for k in sorted(kwargs))
    return f"{name}({args})"


def canonical_spec(spec: str) -> str:
    """Normalize a spec string (``parse_spec`` then :func:`format_spec`)."""
    return format_spec(*parse_spec(spec))
