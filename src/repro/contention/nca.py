"""NCA-level contention analysis (paper Sec. VII-B/C).

Section VII-B counts, for a routing scheme, how many permutations are
routed at each contention level ``C``; the key theorem is that the counts
are *identical* for S-mod-k and D-mod-k, via the inverse-permutation
bijection: routing ``P`` with S-mod-k yields the same contention
distribution as routing ``P^{-1}`` with D-mod-k.  Section VII-C extends
the argument to general patterns through their permutation
decomposition.  The functions here compute the quantities those
experiments need; the theorem itself is asserted exactly by the tests
and demonstrated statistically by ``benchmarks/bench_equivalence.py``.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

import numpy as np

from ..core.base import RoutingAlgorithm
from ..patterns.decomposition import decompose_into_permutations
from ..patterns.permutations import Permutation
from .metrics import max_network_contention

__all__ = [
    "pattern_contention_level",
    "permutation_contention_level",
    "contention_spectrum",
    "general_pattern_contention",
]


def pattern_contention_level(
    algorithm: RoutingAlgorithm, pairs: Sequence[tuple[int, int]]
) -> int:
    """Contention level ``C`` of a pattern under an algorithm."""
    flows = [(s, d) for s, d in pairs if s != d]
    if not flows:
        return 0
    return max_network_contention(algorithm.build_table(flows))


def permutation_contention_level(
    algorithm: RoutingAlgorithm, perm: Permutation
) -> int:
    """Contention level of a permutation pattern."""
    return pattern_contention_level(algorithm, perm.pairs())


def contention_spectrum(
    algorithm: RoutingAlgorithm, perms: Iterable[Permutation]
) -> Counter:
    """Histogram {contention level: #permutations} over a permutation set.

    Feeding the same set (or its element-wise inverses) to S-mod-k and
    D-mod-k produces identical histograms — the Sec. VII-B equivalence.
    """
    spectrum: Counter = Counter()
    for perm in perms:
        spectrum[permutation_contention_level(algorithm, perm)] += 1
    return spectrum


def general_pattern_contention(
    algorithm: RoutingAlgorithm, pairs: Sequence[tuple[int, int]]
) -> tuple[int, list[int]]:
    """Sec. VII-C: contention of a general pattern and of its permutation
    rounds.

    Returns ``(c_max, per_round_levels)`` where ``c_max`` is the maximum
    contention over the decomposition rounds.  The paper argues the
    pattern's effective contention is ``c_max`` — same-endpoint flows
    across rounds only add endpoint contention.
    """
    rounds = decompose_into_permutations([(s, d) for s, d in pairs if s != d])
    levels = [pattern_contention_level(algorithm, rnd) for rnd in rounds]
    return (max(levels) if levels else 0, levels)
