"""Routes-per-NCA distributions (paper Sec. VII-D, Fig. 4).

Figure 4 plots, for every root (top-level NCA), the number of all-pairs
routes an algorithm assigns through it.  The striking cases:

* full tree, plain mod-k: perfectly flat (61440/16 = 3840 routes/root);
* slimmed ``w2 = 10`` tree, plain mod-k: bimodal — digits 10..15 wrap
  onto roots 0..5, so those roots carry 7680 routes and roots 6..9 only
  3840;
* the balanced-random relabeling restores a near-even spread, and Random
  is even by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.base import RouteTable, RoutingAlgorithm

__all__ = ["routes_per_nca", "nca_distribution_stats", "NCADistribution"]


def routes_per_nca(table: RouteTable, level: int | None = None) -> np.ndarray:
    """Routes through each level-``level`` NCA (default: the roots).

    Only flows whose NCA is exactly at ``level`` are counted (pairs that
    stay lower never reach those NCAs).  Returns an array indexed by node
    id at that level.
    """
    topo = table.topo
    level = topo.h if level is None else level
    mask = table.nca_level == level
    nodes = table.nca_nodes()[mask]
    return np.bincount(nodes, minlength=topo.num_nodes(level))


@dataclass(frozen=True)
class NCADistribution:
    """Summary statistics of a routes-per-NCA census (one Fig.-4 box)."""

    counts: tuple[int, ...]
    mean: float
    minimum: int
    maximum: int
    spread: int  # max - min
    stddev: float


def nca_distribution_stats(counts: np.ndarray) -> NCADistribution:
    """Summarize a per-NCA route census."""
    counts = np.asarray(counts)
    return NCADistribution(
        counts=tuple(int(c) for c in counts),
        mean=float(counts.mean()),
        minimum=int(counts.min()),
        maximum=int(counts.max()),
        spread=int(counts.max() - counts.min()),
        stddev=float(counts.std()),
    )


def all_pairs_nca_census(
    algorithm: RoutingAlgorithm, level: int | None = None
) -> np.ndarray:
    """Fig. 4's census: all ordered pairs, counted per NCA at ``level``."""
    table = algorithm.all_pairs_table()
    return routes_per_nca(table, level=level)
