"""Endpoint-aware contention metrics (paper Sec. IV and ref. [4]).

The paper distinguishes *endpoint* contention (flows sharing a network
adapter, unavoidable, routing-independent) from *routing/network*
contention (flows from different sources to different destinations
competing for a switch port).  Its metric of interest is the performance
loss caused by the latter only: "flows experiencing endpoint contention
can share (part of) their routes without reducing their effective
end-to-end bandwidth further".

We operationalize this as, per directed link carrying flow set ``F``:

``C(link) = min(#distinct sources in F, #distinct destinations in F)``

Rationale: each distinct source injects at most one link's worth of
bandwidth, each distinct destination drains at most one; hence the
aggregate demand on the link — after endpoint serialization is accounted
for — is bounded by both counts, and the bound is tight for the
bulk-synchronous equal-size phases the paper evaluates.  Sanity anchors:

* flows from one source to many destinations: ``C = 1`` (free sharing);
* flows from many sources to one destination: ``C = 1`` (free sharing);
* a permutation squeezing 16 flows over 2 uplinks: ``C = 8`` — exactly
  the paper's CG factor-of-eight pathology (Sec. VII-A).

The *contention level of a routed pattern* is the maximum over links
(paper Sec. VII-B), reported by :func:`max_network_contention`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.base import RouteTable

__all__ = [
    "link_network_contention",
    "max_network_contention",
    "endpoint_contention",
    "ContentionReport",
    "contention_report",
    "LinkLoadSummary",
    "link_load_summary",
]


def _distinct_count_per_link(
    links: np.ndarray, endpoints: np.ndarray, n_links: int
) -> np.ndarray:
    """Number of distinct ``endpoints`` values per link (vectorized)."""
    if len(links) == 0:
        return np.zeros(n_links, dtype=np.int64)
    span = int(endpoints.max()) + 1
    combos = np.unique(links * span + endpoints)
    return np.bincount(combos // span, minlength=n_links)


def link_network_contention(table: RouteTable) -> np.ndarray:
    """Per-link endpoint-aware contention ``C`` (module docstring).

    Array of length ``num_directed_links``; zero on idle links.
    """
    flows, links = table.flow_links()
    n_links = table.topo.num_directed_links
    if len(flows) == 0:
        return np.zeros(n_links, dtype=np.int64)
    src = table.src[flows]
    dst = table.dst[flows]
    distinct_src = _distinct_count_per_link(links, src, n_links)
    distinct_dst = _distinct_count_per_link(links, dst, n_links)
    return np.minimum(distinct_src, distinct_dst)


def max_network_contention(table: RouteTable) -> int:
    """The contention level ``C`` of the routed pattern (Sec. VII-B)."""
    contention = link_network_contention(table)
    return int(contention.max()) if len(contention) else 0


def endpoint_contention(
    pairs: list[tuple[int, int]], num_ranks: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-node (sends, receives) counts — the routing-independent floor.

    The completion time of an equal-size bulk phase on an ideal network is
    proportional to ``max(max sends, max receives)``.
    """
    sends = np.zeros(num_ranks, dtype=np.int64)
    recvs = np.zeros(num_ranks, dtype=np.int64)
    for s, d in pairs:
        sends[s] += 1
        recvs[d] += 1
    return sends, recvs


@dataclass(frozen=True)
class LinkLoadSummary:
    """One-pass digest of a routed phase's raw link-load census.

    The sweep engine aggregates these across phases into its per-run
    metrics; idle links are excluded from the mean but counted in the
    histogram under load 0.
    """

    max_load: int
    mean_load: float
    num_used_links: int
    #: {flows-per-link: number-of-links}, idle links included under 0
    histogram: dict[int, int]


def link_load_summary(table: RouteTable) -> LinkLoadSummary:
    """Summarize the flow count census of a routed batch."""
    from .link_load import link_flow_counts

    counts = link_flow_counts(table)
    used = counts[counts > 0]
    values, freq = np.unique(counts, return_counts=True)
    return LinkLoadSummary(
        max_load=int(counts.max(initial=0)),
        mean_load=float(used.mean()) if len(used) else 0.0,
        num_used_links=int(len(used)),
        histogram={int(v): int(f) for v, f in zip(values, freq)},
    )


@dataclass(frozen=True)
class ContentionReport:
    """Digest of a routed pattern's contention structure."""

    num_flows: int
    max_network_contention: int
    mean_link_contention: float
    num_contended_links: int
    max_endpoint_contention: int
    #: heuristic slowdown floor: network contention relative to the
    #: serialization the endpoints already impose
    slowdown_bound: float


def contention_report(table: RouteTable) -> ContentionReport:
    """Compute a :class:`ContentionReport` for a routed pattern."""
    contention = link_network_contention(table)
    used = contention[contention > 0]
    pairs = list(zip(table.src.tolist(), table.dst.tolist()))
    n = table.topo.num_leaves
    sends, recvs = endpoint_contention(pairs, n)
    ep = int(max(sends.max(initial=0), recvs.max(initial=0)))
    cmax = int(contention.max()) if len(contention) else 0
    return ContentionReport(
        num_flows=len(table),
        max_network_contention=cmax,
        mean_link_contention=float(used.mean()) if len(used) else 0.0,
        num_contended_links=int((contention > 1).sum()),
        max_endpoint_contention=ep,
        slowdown_bound=(cmax / ep) if ep else 0.0,
    )
