"""Contention analytics: endpoint vs. network contention separation,
per-link loads, NCA-level contention spectra, routes-per-NCA censuses
(paper Sec. IV, VII)."""

from .distribution import (
    NCADistribution,
    all_pairs_nca_census,
    nca_distribution_stats,
    routes_per_nca,
)
from .link_load import busiest_links, link_flow_counts, load_histogram
from .metrics import (
    ContentionReport,
    LinkLoadSummary,
    contention_report,
    endpoint_contention,
    link_load_summary,
    link_network_contention,
    max_network_contention,
)
from .nca import (
    contention_spectrum,
    general_pattern_contention,
    pattern_contention_level,
    permutation_contention_level,
)

__all__ = [
    "link_flow_counts",
    "busiest_links",
    "load_histogram",
    "link_network_contention",
    "max_network_contention",
    "endpoint_contention",
    "ContentionReport",
    "contention_report",
    "LinkLoadSummary",
    "link_load_summary",
    "pattern_contention_level",
    "permutation_contention_level",
    "contention_spectrum",
    "general_pattern_contention",
    "routes_per_nca",
    "nca_distribution_stats",
    "all_pairs_nca_census",
    "NCADistribution",
]
