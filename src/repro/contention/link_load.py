"""Per-link flow counting (the raw, endpoint-blind load census)."""

from __future__ import annotations

import numpy as np

from ..core.base import RouteTable

__all__ = ["link_flow_counts", "busiest_links", "load_histogram"]


def link_flow_counts(table: RouteTable, weights: np.ndarray | None = None) -> np.ndarray:
    """Number of flows (or total weight) traversing each directed link.

    Returns an array of length ``topo.num_directed_links``; index meaning
    per :meth:`repro.topology.XGFT.describe_link`.  The unweighted census
    is int64; the weighted one is always float64, including for tables
    with no link-traversing flows (``np.bincount`` would otherwise fall
    back to int zeros on empty input and surprise float consumers).
    """
    flows, links = table.flow_links()
    n_links = table.topo.num_directed_links
    if weights is None:
        return np.bincount(links, minlength=n_links)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (len(table),):
        raise ValueError(f"weights must have shape ({len(table)},), got {weights.shape}")
    if len(links) == 0:
        return np.zeros(n_links, dtype=np.float64)
    return np.bincount(links, weights=weights[flows], minlength=n_links)


def busiest_links(table: RouteTable, top: int = 5) -> list[tuple[int, int, tuple]]:
    """The ``top`` most loaded links as ``(count, link_idx, description)``.

    Ordering is fully deterministic: descending by count, ties broken by
    ascending link index (``np.argsort(counts)[::-1]`` would order tied
    counts by *reversed* memory position — an implementation accident,
    not a contract).
    """
    counts = link_flow_counts(table)
    order = np.lexsort((np.arange(len(counts)), -counts))[:top]
    return [
        (int(counts[i]), int(i), table.topo.describe_link(int(i)))
        for i in order
        if counts[i] > 0
    ]


def load_histogram(table: RouteTable) -> dict[int, int]:
    """Histogram {flows-per-link: number-of-links}, idle links included."""
    counts = link_flow_counts(table)
    values, freq = np.unique(counts, return_counts=True)
    return {int(v): int(f) for v, f in zip(values, freq)}
